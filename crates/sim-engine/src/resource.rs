//! FIFO-served shared resources with queueing delay.
//!
//! The cluster simulator models two kinds of contended resources exactly as
//! the paper does: the split-transaction memory bus inside each SMP node and
//! the network interface (NI) of each node's cluster device ("we model
//! contention at the network interfaces accurately").  Both are modeled as
//! single servers with FIFO service: a request arriving while the server is
//! busy waits until the in-flight requests drain.
//!
//! The model is intentionally simple — `busy_until` bookkeeping rather than
//! an explicit event calendar — because requests are presented to each
//! resource in nondecreasing time order by the simulator's global event
//! loop.

use crate::cycles::Cycles;
use serde::{Deserialize, Serialize};

/// Occupancy statistics accumulated by a [`Resource`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Number of acquisitions.
    pub requests: u64,
    /// Total service time (occupancy) charged, in cycles.
    pub busy: Cycles,
    /// Total time requests spent queued behind earlier requests.
    pub queued: Cycles,
    /// Latest completion time observed.
    pub last_completion: Cycles,
}

impl ResourceStats {
    /// Mean queueing delay per request, in cycles (0 if no requests).
    pub fn mean_queue_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queued.raw() as f64 / self.requests as f64
        }
    }

    /// Utilization relative to an observation window ending at
    /// `self.last_completion` (0 if nothing happened).
    pub fn utilization(&self) -> f64 {
        if self.last_completion.is_zero() {
            0.0
        } else {
            self.busy.raw() as f64 / self.last_completion.raw() as f64
        }
    }
}

/// A single-server FIFO resource.
///
/// `acquire(now, service)` returns the interval `[start, finish)` during
/// which the request holds the resource, where `start >= now` accounts for
/// queueing behind earlier requests and `finish = start + service`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Resource {
    name: String,
    busy_until: Cycles,
    stats: ResourceStats,
}

/// The grant returned by [`Resource::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually starts (>= request time).
    pub start: Cycles,
    /// When service completes and the resource becomes free again.
    pub finish: Cycles,
    /// How long the request waited behind earlier traffic.
    pub queue_delay: Cycles,
}

impl Resource {
    /// Create a named resource (the name is only used for reporting).
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            busy_until: Cycles::ZERO,
            stats: ResourceStats::default(),
        }
    }

    /// The resource's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time at which the server becomes idle.
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Acquire the resource at time `now` for `service` cycles, FIFO behind
    /// any earlier unfinished request.
    pub fn acquire(&mut self, now: Cycles, service: Cycles) -> Grant {
        let start = now.max(self.busy_until);
        let queue_delay = start - now;
        let finish = start + service;
        self.busy_until = finish;
        self.stats.requests += 1;
        self.stats.busy += service;
        self.stats.queued += queue_delay;
        self.stats.last_completion = self.stats.last_completion.max(finish);
        Grant {
            start,
            finish,
            queue_delay,
        }
    }

    /// Peek at the completion time a request issued at `now` with the given
    /// `service` would observe, without actually occupying the resource.
    pub fn probe(&self, now: Cycles, service: Cycles) -> Cycles {
        now.max(self.busy_until) + service
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ResourceStats {
        &self.stats
    }

    /// Reset occupancy and statistics (used between experiment runs).
    pub fn reset(&mut self) {
        self.busy_until = Cycles::ZERO;
        self.stats = ResourceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_requests_start_immediately() {
        let mut bus = Resource::new("bus");
        let g = bus.acquire(Cycles::new(100), Cycles::new(6));
        assert_eq!(g.start, Cycles::new(100));
        assert_eq!(g.finish, Cycles::new(106));
        assert_eq!(g.queue_delay, Cycles::ZERO);
    }

    #[test]
    fn back_to_back_requests_queue_fifo() {
        let mut bus = Resource::new("bus");
        bus.acquire(Cycles::new(0), Cycles::new(10));
        // Second request arrives at t=4 while the first is still in service.
        let g = bus.acquire(Cycles::new(4), Cycles::new(10));
        assert_eq!(g.start, Cycles::new(10));
        assert_eq!(g.finish, Cycles::new(20));
        assert_eq!(g.queue_delay, Cycles::new(6));
    }

    #[test]
    fn idle_gap_does_not_accumulate_delay() {
        let mut ni = Resource::new("ni");
        ni.acquire(Cycles::new(0), Cycles::new(5));
        let g = ni.acquire(Cycles::new(100), Cycles::new(5));
        assert_eq!(g.start, Cycles::new(100));
        assert_eq!(g.queue_delay, Cycles::ZERO);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut r = Resource::new("r");
        r.acquire(Cycles::new(0), Cycles::new(8));
        let before = r.busy_until();
        let t = r.probe(Cycles::new(2), Cycles::new(3));
        assert_eq!(t, Cycles::new(11));
        assert_eq!(r.busy_until(), before);
        assert_eq!(r.stats().requests, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = Resource::new("r");
        r.acquire(Cycles::new(0), Cycles::new(10));
        r.acquire(Cycles::new(0), Cycles::new(10));
        r.acquire(Cycles::new(50), Cycles::new(10));
        let s = r.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.busy, Cycles::new(30));
        assert_eq!(s.queued, Cycles::new(10));
        assert_eq!(s.last_completion, Cycles::new(60));
        assert!((s.mean_queue_delay() - 10.0 / 3.0).abs() < 1e-9);
        assert!((s.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("r");
        r.acquire(Cycles::new(0), Cycles::new(10));
        r.reset();
        assert_eq!(r.busy_until(), Cycles::ZERO);
        assert_eq!(r.stats().requests, 0);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = ResourceStats::default();
        assert_eq!(s.mean_queue_delay(), 0.0);
        assert_eq!(s.utilization(), 0.0);
    }
}
