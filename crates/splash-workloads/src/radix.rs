//! `radix` — parallel integer radix sort (SPLASH-2 Radix).
//!
//! Each pass over one digit has three phases: every processor builds a local
//! histogram of its own contiguous chunk of keys, the histograms are
//! combined into global rank offsets, and finally every key is *permuted*
//! into a destination array at a position computed from the global ranks.
//! The permutation writes are scattered over the whole destination array, so
//! every node writes pages homed on every other node with no single dominant
//! user — the paper finds essentially no opportunity for migration or
//! replication (1 migration, 0 replications per node) while R-NUMA relocates
//! aggressively (1714 relocations per node) and is ultimately limited by the
//! page cache capacity because the streaming working set of source plus
//! destination keys exceeds it.

use crate::config::{Scale, WorkloadConfig};
use crate::util::owned_range;
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, TraceWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parallel integer radix sort.
pub struct Radix;

struct RadixParams {
    /// Number of keys.
    keys: u64,
    /// Sorting passes (digits) simulated.
    passes: u64,
    /// Radix (buckets per digit).
    radix: u64,
}

impl RadixParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => RadixParams {
                keys: 128 * 1024,
                passes: 2,
                radix: 1024,
            },
            Scale::Paper => RadixParams {
                keys: 1024 * 1024,
                passes: 2,
                radix: 1024,
            },
        }
    }
}

/// Keys per cache line (4-byte integers).
const KEYS_PER_LINE: u64 = 16;

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn description(&self) -> &'static str {
        "Integer radix sort"
    }

    fn paper_input(&self) -> &'static str {
        "1M integers, radix 1024"
    }

    fn reduced_input(&self) -> &'static str {
        "128K integers, radix 1024"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        let params = RadixParams::for_scale(cfg.scale);
        let procs = cfg.topology.total_procs();

        let mut space = AddressSpace::new();
        let src = space.alloc("keys_src", params.keys, 4);
        let dst = space.alloc("keys_dst", params.keys, 4);
        let histograms = space.alloc("histograms", params.radix * procs as u64, 4);

        let mut b = TraceWriter::new(cfg.topology, sink).with_think_cycles(cfg.think_cycles);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5ad1);

        // Initialization: each processor writes its own chunk of the source
        // array (first-touch places it locally).
        for p in 0..procs {
            let proc = ProcId(p as u16);
            let range = owned_range(params.keys as usize, cfg.topology, proc);
            let mut k = range.start as u64;
            while k < range.end as u64 {
                b.write(proc, src.elem(k));
                k += KEYS_PER_LINE;
            }
        }
        b.barrier_all();

        for pass in 0..params.passes {
            // Phase 1: local histogram — stream through the owned chunk of
            // the (current) source array and update the processor's own
            // histogram bins.
            for p in 0..procs {
                let proc = ProcId(p as u16);
                let range = owned_range(params.keys as usize, cfg.topology, proc);
                let hist_base = params.radix * p as u64;
                let mut k = range.start as u64;
                while k < range.end as u64 {
                    b.read(proc, src.elem(k));
                    let bin = rng.gen_range(0..params.radix);
                    b.write(proc, histograms.elem(hist_base + bin));
                    k += KEYS_PER_LINE;
                }
            }
            b.barrier_all();

            // Phase 2: global rank computation — every processor reads every
            // other processor's histogram (small, read-shared).
            for p in 0..procs {
                let proc = ProcId(p as u16);
                for other in 0..procs {
                    let base = params.radix * other as u64;
                    let mut bin = 0u64;
                    while bin < params.radix {
                        b.read(proc, histograms.elem(base + bin));
                        bin += KEYS_PER_LINE;
                    }
                }
            }
            b.barrier_all();

            // Phase 3: permutation — read own keys, write them to scattered
            // positions of the destination array (all-to-all traffic).
            for p in 0..procs {
                let proc = ProcId(p as u16);
                let range = owned_range(params.keys as usize, cfg.topology, proc);
                let mut k = range.start as u64;
                while k < range.end as u64 {
                    b.read(proc, src.elem(k));
                    // One permuted write per key in this line; destinations
                    // are uniformly scattered, as radix-sort ranks are.
                    for _ in 0..4 {
                        let dest = rng.gen_range(0..params.keys);
                        b.write(proc, dst.elem(dest));
                    }
                    k += KEYS_PER_LINE;
                }
            }
            b.barrier_all();
            let _ = pass;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_and_write_heavy() {
        let cfg = WorkloadConfig::reduced();
        let trace = Radix.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        // The permutation phase makes radix unusually write-heavy.
        assert!(
            stats.write_fraction() > 0.3,
            "write fraction {}",
            stats.write_fraction()
        );
    }

    #[test]
    fn destination_pages_are_shared_by_many_nodes() {
        let cfg = WorkloadConfig::reduced();
        let stats = Radix.generate(&cfg).stats();
        // Scattered permutation writes touch most pages from many nodes.
        assert!(stats.node_shared_pages * 2 > stats.footprint_pages);
    }

    #[test]
    fn footprint_scales_with_key_count() {
        let reduced = RadixParams::for_scale(Scale::Reduced);
        let paper = RadixParams::for_scale(Scale::Paper);
        assert_eq!(paper.keys, 8 * reduced.keys);
        let stats = Radix.generate(&WorkloadConfig::reduced()).stats();
        // Source + destination arrays: 2 * 128K * 4 bytes = 1 MB = 256 pages,
        // plus histograms.
        assert!(stats.footprint_pages >= 256);
    }
}
