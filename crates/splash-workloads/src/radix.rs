//! `radix` — parallel integer radix sort (SPLASH-2 Radix).
//!
//! Each pass over one digit has three phases: every processor builds a local
//! histogram of its own contiguous chunk of keys, the histograms are
//! combined into global rank offsets, and finally every key is *permuted*
//! into a destination array at a position computed from the global ranks.
//! The permutation writes are scattered over the whole destination array, so
//! every node writes pages homed on every other node with no single dominant
//! user — the paper finds essentially no opportunity for migration or
//! replication (1 migration, 0 replications per node) while R-NUMA relocates
//! aggressively (1714 relocations per node) and is ultimately limited by the
//! page cache capacity because the streaming working set of source plus
//! destination keys exceeds it.

use crate::config::{Scale, WorkloadConfig};
use crate::util::{advance_proc_phase, owned_range};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, StepGenerator, StepWriter, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parallel integer radix sort.
pub struct Radix;

struct RadixParams {
    /// Number of keys.
    keys: u64,
    /// Sorting passes (digits) simulated.
    passes: u64,
    /// Radix (buckets per digit).
    radix: u64,
}

impl RadixParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => RadixParams {
                keys: 128 * 1024,
                passes: 2,
                radix: 1024,
            },
            Scale::Paper => RadixParams {
                keys: 1024 * 1024,
                passes: 2,
                radix: 1024,
            },
            // The key array carries the factor; the digit structure is
            // Table 2's.
            Scale::Custom(c) => RadixParams {
                keys: c.of(1024 * 1024),
                passes: 2,
                radix: 1024,
            },
        }
    }
}

/// Keys per cache line (4-byte integers).
const KEYS_PER_LINE: u64 = 16;

/// Where the resumable generator is in the radix phase structure.  Each
/// step emits one processor's slice of one phase; the step that completes a
/// phase also emits its barrier, so the global emission order is exactly
/// the straight-line generator's.
enum RadixState {
    Init { p: usize },
    Hist { pass: u64, p: usize },
    Rank { pass: u64, p: usize },
    Perm { pass: u64, p: usize },
    Finish,
}

struct RadixGen {
    params: RadixParams,
    topology: Topology,
    procs: usize,
    src: Segment,
    dst: Segment,
    histograms: Segment,
    w: StepWriter,
    rng: SmallRng,
    state: RadixState,
}

impl RadixGen {
    fn new(cfg: &WorkloadConfig) -> Self {
        let params = RadixParams::for_scale(cfg.scale);
        let procs = cfg.topology.total_procs();

        let mut space = AddressSpace::new();
        let src = space.alloc("keys_src", params.keys, 4);
        let dst = space.alloc("keys_dst", params.keys, 4);
        let histograms = space.alloc("histograms", params.radix * procs as u64, 4);

        RadixGen {
            params,
            topology: cfg.topology,
            procs,
            src,
            dst,
            histograms,
            w: StepWriter::new(cfg.topology).with_think_cycles(cfg.think_cycles),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x5ad1),
            state: RadixState::Init { p: 0 },
        }
    }
}

impl StepGenerator for RadixGen {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        let params = &self.params;
        match self.state {
            // Initialization: each processor writes its own chunk of the
            // source array (first-touch places it locally).
            RadixState::Init { p } => {
                let proc = ProcId(p as u16);
                let range = owned_range(params.keys as usize, self.topology, proc);
                let mut k = range.start as u64;
                while k < range.end as u64 {
                    self.w.write(sink, proc, self.src.elem(k));
                    k += KEYS_PER_LINE;
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| RadixState::Init { p },
                    || RadixState::Hist { pass: 0, p: 0 },
                );
            }
            // Phase 1: local histogram — stream through the owned chunk of
            // the (current) source array and update the processor's own
            // histogram bins.
            RadixState::Hist { pass, p } => {
                let proc = ProcId(p as u16);
                let range = owned_range(params.keys as usize, self.topology, proc);
                let hist_base = params.radix * p as u64;
                let mut k = range.start as u64;
                while k < range.end as u64 {
                    self.w.read(sink, proc, self.src.elem(k));
                    let bin = self.rng.gen_range(0..params.radix);
                    self.w
                        .write(sink, proc, self.histograms.elem(hist_base + bin));
                    k += KEYS_PER_LINE;
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| RadixState::Hist { pass, p },
                    || RadixState::Rank { pass, p: 0 },
                );
            }
            // Phase 2: global rank computation — every processor reads every
            // other processor's histogram (small, read-shared).
            RadixState::Rank { pass, p } => {
                let proc = ProcId(p as u16);
                for other in 0..self.procs {
                    let base = params.radix * other as u64;
                    let mut bin = 0u64;
                    while bin < params.radix {
                        self.w.read(sink, proc, self.histograms.elem(base + bin));
                        bin += KEYS_PER_LINE;
                    }
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| RadixState::Rank { pass, p },
                    || RadixState::Perm { pass, p: 0 },
                );
            }
            // Phase 3: permutation — read own keys, write them to scattered
            // positions of the destination array (all-to-all traffic).
            RadixState::Perm { pass, p } => {
                let proc = ProcId(p as u16);
                let range = owned_range(params.keys as usize, self.topology, proc);
                let mut k = range.start as u64;
                while k < range.end as u64 {
                    self.w.read(sink, proc, self.src.elem(k));
                    // One permuted write per key in this line; destinations
                    // are uniformly scattered, as radix-sort ranks are.
                    for _ in 0..4 {
                        let dest = self.rng.gen_range(0..params.keys);
                        self.w.write(sink, proc, self.dst.elem(dest));
                    }
                    k += KEYS_PER_LINE;
                }
                let passes = params.passes;
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| RadixState::Perm { pass, p },
                    || {
                        if pass + 1 < passes {
                            RadixState::Hist {
                                pass: pass + 1,
                                p: 0,
                            }
                        } else {
                            RadixState::Finish
                        }
                    },
                );
            }
            RadixState::Finish => {
                self.w.finish(sink);
                return false;
            }
        }
        true
    }
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn description(&self) -> &'static str {
        "Integer radix sort"
    }

    fn paper_input(&self) -> &'static str {
        "1M integers, radix 1024"
    }

    fn reduced_input(&self) -> &'static str {
        "128K integers, radix 1024"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        crate::run_stepper(self.stepper(cfg), sink);
    }

    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        Box::new(RadixGen::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_and_write_heavy() {
        let cfg = WorkloadConfig::reduced();
        let trace = Radix.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        // The permutation phase makes radix unusually write-heavy.
        assert!(
            stats.write_fraction() > 0.3,
            "write fraction {}",
            stats.write_fraction()
        );
    }

    #[test]
    fn destination_pages_are_shared_by_many_nodes() {
        let cfg = WorkloadConfig::reduced();
        let stats = Radix.generate(&cfg).stats();
        // Scattered permutation writes touch most pages from many nodes.
        assert!(stats.node_shared_pages * 2 > stats.footprint_pages);
    }

    #[test]
    fn footprint_scales_with_key_count() {
        let reduced = RadixParams::for_scale(Scale::Reduced);
        let paper = RadixParams::for_scale(Scale::Paper);
        assert_eq!(paper.keys, 8 * reduced.keys);
        let stats = Radix.generate(&WorkloadConfig::reduced()).stats();
        // Source + destination arrays: 2 * 128K * 4 bytes = 1 MB = 256 pages,
        // plus histograms.
        assert!(stats.footprint_pages >= 256);
    }

    #[test]
    fn custom_scale_grows_the_key_array() {
        use crate::config::CustomScale;
        let double = RadixParams::for_scale(Scale::Custom(CustomScale::new(2, 1)));
        assert_eq!(double.keys, 2 * 1024 * 1024, "past Table 2");
        assert_eq!(double.radix, 1024, "digit structure is Table 2's");
        let sliver = RadixParams::for_scale(Scale::Custom(CustomScale::new(1, 32)));
        assert_eq!(sliver.keys, 32 * 1024);
    }
}
