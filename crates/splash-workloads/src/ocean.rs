//! `ocean` — red/black Gauss-Seidel style stencil relaxation over a square
//! ocean grid (the time-consuming kernel of SPLASH-2 Ocean).
//!
//! The grid is partitioned into contiguous bands of rows, one per processor.
//! On every sweep a processor reads the five-point stencil around each of
//! its grid points and writes the point.  The only inter-node communication
//! is at partition boundaries, so the read-write sharing degree of any page
//! is at most two — and, critically for the paper, the sharers are *stable*:
//! there is no single dominant remote user to migrate a boundary page to and
//! no read-only page to replicate.  This is why ocean shows only a handful
//! of page migrations and no replications in Table 4, while R-NUMA can still
//! absorb the capacity misses on each node's own (large) band.

use crate::config::{Scale, WorkloadConfig};
use crate::util::{advance_proc_phase, owned_range};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, StepGenerator, StepWriter, Topology};

/// Ocean simulation (stencil relaxation kernel).
pub struct Ocean;

struct OceanParams {
    /// Grid dimension (points per side).
    n: u64,
    /// Relaxation sweeps.
    sweeps: u64,
}

impl OceanParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            // The grid itself matches the paper (130x130 is already small);
            // the reduced preset only trims the number of relaxation sweeps.
            Scale::Reduced => OceanParams { n: 130, sweeps: 8 },
            Scale::Paper => OceanParams { n: 130, sweeps: 12 },
            // The grid *area* carries the factor (so footprint scales
            // linearly with it); the sweep count is the paper's.  The floor
            // keeps a band and a stencil column per processor on the paper
            // cluster even at unit-test slivers.
            Scale::Custom(c) => OceanParams {
                n: c.dim(130).max(34),
                sweeps: 12,
            },
        }
    }
}

enum OceanState {
    Init { p: usize },
    Sweep { sweep: u64, p: usize },
    Finish,
}

struct OceanGen {
    params: OceanParams,
    topology: Topology,
    procs: usize,
    grid: Segment,
    rhs: Segment,
    w: StepWriter,
    state: OceanState,
}

impl OceanGen {
    fn new(cfg: &WorkloadConfig) -> Self {
        let params = OceanParams::for_scale(cfg.scale);
        let n = params.n;
        let mut space = AddressSpace::new();
        // Two grids: the solution grid (read/written in place) and the
        // right-hand side (read-only after initialization), mirroring the
        // multigrid arrays of the original program.
        let grid = space.alloc("grid", n * n, 8);
        let rhs = space.alloc("rhs", n * n, 8);
        OceanGen {
            params,
            topology: cfg.topology,
            procs: cfg.topology.total_procs(),
            grid,
            rhs,
            w: StepWriter::new(cfg.topology).with_think_cycles(cfg.think_cycles),
            state: OceanState::Init { p: 0 },
        }
    }
}

impl StepGenerator for OceanGen {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        let n = self.params.n;
        match self.state {
            // Initialization: every processor writes its own band of both
            // grids so first-touch places the pages on the owner's node.
            OceanState::Init { p } => {
                let proc = ProcId(p as u16);
                let band = owned_range(n as usize, self.topology, proc);
                for row in band {
                    let mut col = 0u64;
                    while col < n {
                        self.w
                            .write(sink, proc, self.grid.elem2(row as u64, col, n));
                        self.w.write(sink, proc, self.rhs.elem2(row as u64, col, n));
                        col += 8; // one cache line of doubles
                    }
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| OceanState::Init { p },
                    || OceanState::Sweep { sweep: 0, p: 0 },
                );
            }
            OceanState::Sweep { sweep, p } => {
                let proc = ProcId(p as u16);
                let band = owned_range(n as usize, self.topology, proc);
                for row in band {
                    let row = row as u64;
                    if row == 0 || row == n - 1 {
                        continue; // fixed boundary
                    }
                    let mut col = 8u64;
                    while col < n - 1 {
                        // Five-point stencil at line granularity: the north
                        // and south neighbours live in adjacent rows (the
                        // first/last rows of a band are remote), east/west
                        // are in the same cache line.
                        self.w.read(sink, proc, self.grid.elem2(row - 1, col, n));
                        self.w.read(sink, proc, self.grid.elem2(row + 1, col, n));
                        self.w.read(sink, proc, self.grid.elem2(row, col, n));
                        self.w.read(sink, proc, self.rhs.elem2(row, col, n));
                        self.w.write(sink, proc, self.grid.elem2(row, col, n));
                        col += 8;
                    }
                }
                let sweeps = self.params.sweeps;
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| OceanState::Sweep { sweep, p },
                    || {
                        if sweep + 1 < sweeps {
                            OceanState::Sweep {
                                sweep: sweep + 1,
                                p: 0,
                            }
                        } else {
                            OceanState::Finish
                        }
                    },
                );
            }
            OceanState::Finish => {
                self.w.finish(sink);
                return false;
            }
        }
        true
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn description(&self) -> &'static str {
        "Ocean simulation (stencil relaxation)"
    }

    fn paper_input(&self) -> &'static str {
        "130x130 ocean"
    }

    fn reduced_input(&self) -> &'static str {
        "130x130 ocean, 8 sweeps"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        crate::run_stepper(self.stepper(cfg), sink);
    }

    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        Box::new(OceanGen::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_with_boundary_sharing_only() {
        let cfg = WorkloadConfig::reduced();
        let trace = Ocean.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        // Sharing exists (band boundaries) but most pages are private to one
        // node: the shared fraction must be well under half.
        assert!(stats.node_shared_pages > 0);
        assert!(
            (stats.node_shared_pages as f64) < 0.5 * stats.footprint_pages as f64,
            "ocean should be mostly node-private ({} of {} pages shared)",
            stats.node_shared_pages,
            stats.footprint_pages
        );
    }

    #[test]
    fn one_barrier_per_sweep_plus_initialization() {
        let cfg = WorkloadConfig::reduced();
        let trace = Ocean.generate(&cfg);
        let params = OceanParams::for_scale(Scale::Reduced);
        assert_eq!(trace.stats().barriers, params.sweeps + 1);
    }

    #[test]
    fn writes_are_a_substantial_fraction() {
        let stats = Ocean.generate(&WorkloadConfig::reduced()).stats();
        let wf = stats.write_fraction();
        assert!(wf > 0.15 && wf < 0.5, "write fraction {wf}");
    }

    #[test]
    fn custom_scale_grows_the_grid_area() {
        use crate::config::CustomScale;
        let quad = OceanParams::for_scale(Scale::Custom(CustomScale::new(4, 1)));
        assert_eq!(quad.n, 260, "4x area = 2x side");
        assert_eq!(quad.sweeps, 12, "sweep count is the paper's");
        let sliver = OceanParams::for_scale(Scale::Custom(CustomScale::new(1, 32)));
        assert_eq!(sliver.n, 34, "floored to keep every band populated");
    }
}
