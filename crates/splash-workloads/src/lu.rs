//! `lu` — blocked dense LU factorization (SPLASH-2 LU, non-contiguous
//! blocks).
//!
//! The matrix is factored in `B x B` blocks.  At elimination step `k` the
//! owner of the diagonal block factors it, the owners of the perimeter
//! blocks (block row and block column `k`) update them against the diagonal
//! block, and every interior block `(i, j)` with `i, j > k` is updated by
//! its owner against the perimeter blocks `(i, k)` and `(k, j)`.
//!
//! The sharing property the paper's analysis relies on: at every step the
//! perimeter blocks are *read by many nodes* (every interior-block owner in
//! the same block row/column) while being written only by their single
//! owner during the preceding phase — separated by barriers.  This is the
//! per-iteration "read phase" that makes `lu` the one application in the
//! study that benefits substantially from page replication.  Interior
//! blocks, in contrast, are read-write private to their owner, so their
//! capacity misses are only removed by R-NUMA's page cache.
//!
//! Blocks are assigned to processors in a 2-D scatter, as in SPLASH-2.

use crate::config::{Scale, WorkloadConfig};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, StepGenerator, StepWriter, BLOCK_SIZE};

/// Blocked dense LU factorization.
pub struct Lu;

/// Elements (doubles) per cache line.
const DOUBLES_PER_LINE: u64 = BLOCK_SIZE / 8;

struct LuParams {
    /// Matrix dimension (elements).
    n: u64,
    /// Block dimension (elements).
    block: u64,
}

impl LuParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => LuParams { n: 192, block: 16 },
            Scale::Paper => LuParams { n: 512, block: 16 },
            // The matrix *area* carries the factor; the dimension is
            // rounded down to whole 16x16 blocks (at least two per side so
            // every phase exists).
            Scale::Custom(c) => LuParams {
                n: (c.dim(512) / 16 * 16).max(32),
                block: 16,
            },
        }
    }

    fn blocks_per_dim(&self) -> u64 {
        self.n / self.block
    }
}

enum LuState {
    Init { bi: u64 },
    Diag { k: u64 },
    Perim { k: u64, i: u64 },
    Interior { k: u64, i: u64 },
    Finish,
}

struct LuGen {
    params: LuParams,
    nb: u64,
    total_procs: u64,
    matrix: Segment,
    w: StepWriter,
    state: LuState,
}

impl LuGen {
    fn new(cfg: &WorkloadConfig) -> Self {
        let params = LuParams::for_scale(cfg.scale);
        let nb = params.blocks_per_dim();
        let mut space = AddressSpace::new();
        let matrix = space.alloc("matrix", params.n * params.n, 8);
        LuGen {
            params,
            nb,
            total_procs: cfg.topology.total_procs() as u64,
            matrix,
            w: StepWriter::new(cfg.topology).with_think_cycles(cfg.think_cycles),
            state: LuState::Init { bi: 0 },
        }
    }

    /// 2-D scatter assignment of blocks to processors (SPLASH-2 LU).
    fn owner(&self, bi: u64, bj: u64) -> ProcId {
        ProcId(((bi * self.nb + bj) % self.total_procs) as u16)
    }

    /// Visit the first address of every cache line of block `(bi, bj)` of
    /// the row-major `n x n` matrix.
    fn for_each_line<F: FnMut(&mut StepWriter, mem_trace::GlobalAddr)>(
        &mut self,
        bi: u64,
        bj: u64,
        mut f: F,
    ) {
        let row0 = bi * self.params.block;
        let col0 = bj * self.params.block;
        for r in 0..self.params.block {
            let mut c = 0;
            while c < self.params.block {
                let addr = self.matrix.elem2(row0 + r, col0 + c, self.params.n);
                f(&mut self.w, addr);
                c += DOUBLES_PER_LINE;
            }
        }
    }

    /// Read every cache line of block `(bi, bj)`.
    fn read_block(&mut self, sink: &mut dyn EventSink, p: ProcId, bi: u64, bj: u64) {
        self.for_each_line(bi, bj, |w, addr| w.read(sink, p, addr));
    }

    /// Read-modify-write every cache line of block `(bi, bj)`.
    fn touch_block(&mut self, sink: &mut dyn EventSink, p: ProcId, bi: u64, bj: u64) {
        self.for_each_line(bi, bj, |w, addr| {
            w.read(sink, p, addr);
            w.write(sink, p, addr);
        });
    }
}

impl StepGenerator for LuGen {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        let nb = self.nb;
        match self.state {
            // Initialization: every owner touches (writes) its own blocks
            // so the first-touch policy places pages at their owners.
            LuState::Init { bi } => {
                for bj in 0..nb {
                    let p = self.owner(bi, bj);
                    self.touch_block(sink, p, bi, bj);
                }
                if bi + 1 < nb {
                    self.state = LuState::Init { bi: bi + 1 };
                } else {
                    self.w.barrier_all(sink);
                    self.state = LuState::Diag { k: 0 };
                }
            }
            // Phase 1: factor the diagonal block.
            LuState::Diag { k } => {
                let p = self.owner(k, k);
                self.touch_block(sink, p, k, k);
                self.w.barrier_all(sink);
                self.state = LuState::Perim { k, i: k + 1 };
            }
            // Phase 2: perimeter blocks read the diagonal block and update
            // themselves.
            LuState::Perim { k, i } => {
                if i < nb {
                    let p = self.owner(i, k);
                    self.read_block(sink, p, k, k);
                    self.touch_block(sink, p, i, k);

                    let q = self.owner(k, i);
                    self.read_block(sink, q, k, k);
                    self.touch_block(sink, q, k, i);
                    self.state = LuState::Perim { k, i: i + 1 };
                } else {
                    self.w.barrier_all(sink);
                    self.state = LuState::Interior { k, i: k + 1 };
                }
            }
            // Phase 3: interior blocks read the two perimeter blocks — the
            // read-shared phase — and update themselves.
            LuState::Interior { k, i } => {
                if i < nb {
                    for j in (k + 1)..nb {
                        let p = self.owner(i, j);
                        self.read_block(sink, p, i, k);
                        self.read_block(sink, p, k, j);
                        self.touch_block(sink, p, i, j);
                    }
                    self.state = LuState::Interior { k, i: i + 1 };
                } else {
                    self.w.barrier_all(sink);
                    self.state = if k + 1 < nb {
                        LuState::Diag { k: k + 1 }
                    } else {
                        LuState::Finish
                    };
                }
            }
            LuState::Finish => {
                self.w.finish(sink);
                return false;
            }
        }
        true
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn description(&self) -> &'static str {
        "Blocked dense LU factorization"
    }

    fn paper_input(&self) -> &'static str {
        "512x512 matrix, 16x16 blocks"
    }

    fn reduced_input(&self) -> &'static str {
        "192x192 matrix, 16x16 blocks"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        crate::run_stepper(self.stepper(cfg), sink);
    }

    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        Box::new(LuGen::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::Topology;

    #[test]
    fn reduced_trace_is_valid_and_has_a_read_phase() {
        let cfg = WorkloadConfig::reduced();
        let trace = Lu.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        // Reads dominate: the interior update reads two blocks for every
        // block it writes.
        assert!(stats.reads > stats.writes);
        // Barriers separate every phase of every elimination step.
        assert!(stats.barriers >= 3 * LuParams::for_scale(Scale::Reduced).blocks_per_dim());
        // The matrix is shared across nodes.
        assert!(stats.node_shared_pages > 4);
    }

    #[test]
    fn paper_scale_is_larger() {
        let small = Lu.generate(&WorkloadConfig::reduced().with_topology(Topology::new(2, 2)));
        // Only compare footprints (generating the full paper-size trace is
        // slow); the paper matrix is several times larger.
        let params_small = LuParams::for_scale(Scale::Reduced);
        let params_big = LuParams::for_scale(Scale::Paper);
        assert!(params_big.n * params_big.n >= 4 * params_small.n * params_small.n);
        assert!(small.stats().footprint_pages >= params_small.n * params_small.n * 8 / 4096);
    }

    #[test]
    fn blocks_are_scattered_across_processors() {
        let cfg = WorkloadConfig::reduced();
        let trace = Lu.generate(&cfg);
        // Every processor must issue some accesses.
        for (i, events) in trace.per_proc.iter().enumerate() {
            let accesses = events.iter().filter(|e| e.is_access()).count();
            assert!(accesses > 0, "processor {i} issues no accesses");
        }
    }

    #[test]
    fn custom_scale_grows_the_matrix_in_whole_blocks() {
        use crate::config::CustomScale;
        let quad = LuParams::for_scale(Scale::Custom(CustomScale::new(4, 1)));
        assert_eq!(quad.n, 1024, "4x area = 2x side, already block-aligned");
        assert_eq!(quad.block, 16);
        let odd = LuParams::for_scale(Scale::Custom(CustomScale::new(1, 3)));
        assert_eq!(odd.n % 16, 0, "rounded to whole blocks");
        assert!(odd.n >= 32);
    }
}
