//! `lu` — blocked dense LU factorization (SPLASH-2 LU, non-contiguous
//! blocks).
//!
//! The matrix is factored in `B x B` blocks.  At elimination step `k` the
//! owner of the diagonal block factors it, the owners of the perimeter
//! blocks (block row and block column `k`) update them against the diagonal
//! block, and every interior block `(i, j)` with `i, j > k` is updated by
//! its owner against the perimeter blocks `(i, k)` and `(k, j)`.
//!
//! The sharing property the paper's analysis relies on: at every step the
//! perimeter blocks are *read by many nodes* (every interior-block owner in
//! the same block row/column) while being written only by their single
//! owner during the preceding phase — separated by barriers.  This is the
//! per-iteration "read phase" that makes `lu` the one application in the
//! study that benefits substantially from page replication.  Interior
//! blocks, in contrast, are read-write private to their owner, so their
//! capacity misses are only removed by R-NUMA's page cache.
//!
//! Blocks are assigned to processors in a 2-D scatter, as in SPLASH-2.

use crate::config::{Scale, WorkloadConfig};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, TraceWriter, BLOCK_SIZE};

/// Blocked dense LU factorization.
pub struct Lu;

/// Elements (doubles) per cache line.
const DOUBLES_PER_LINE: u64 = BLOCK_SIZE / 8;

struct LuParams {
    /// Matrix dimension (elements).
    n: u64,
    /// Block dimension (elements).
    block: u64,
}

impl LuParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => LuParams { n: 192, block: 16 },
            Scale::Paper => LuParams { n: 512, block: 16 },
        }
    }

    fn blocks_per_dim(&self) -> u64 {
        self.n / self.block
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn description(&self) -> &'static str {
        "Blocked dense LU factorization"
    }

    fn paper_input(&self) -> &'static str {
        "512x512 matrix, 16x16 blocks"
    }

    fn reduced_input(&self) -> &'static str {
        "192x192 matrix, 16x16 blocks"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        let params = LuParams::for_scale(cfg.scale);
        let nb = params.blocks_per_dim();
        let total_procs = cfg.topology.total_procs() as u64;

        let mut space = AddressSpace::new();
        let matrix = space.alloc("matrix", params.n * params.n, 8);

        let mut b = TraceWriter::new(cfg.topology, sink).with_think_cycles(cfg.think_cycles);

        // 2-D scatter assignment of blocks to processors (SPLASH-2 LU).
        let owner = |bi: u64, bj: u64| -> ProcId { ProcId(((bi * nb + bj) % total_procs) as u16) };

        // Initialization: every owner touches (writes) its own blocks so the
        // first-touch policy places pages at their owners.
        for bi in 0..nb {
            for bj in 0..nb {
                let p = owner(bi, bj);
                touch_block(&mut b, p, &matrix, &params, bi, bj, true);
            }
        }
        b.barrier_all();

        for k in 0..nb {
            // Phase 1: factor the diagonal block.
            let diag_owner = owner(k, k);
            touch_block(&mut b, diag_owner, &matrix, &params, k, k, true);
            b.barrier_all();

            // Phase 2: perimeter blocks read the diagonal block and update
            // themselves.
            for i in (k + 1)..nb {
                let p = owner(i, k);
                read_block(&mut b, p, &matrix, &params, k, k);
                touch_block(&mut b, p, &matrix, &params, i, k, true);

                let q = owner(k, i);
                read_block(&mut b, q, &matrix, &params, k, k);
                touch_block(&mut b, q, &matrix, &params, k, i, true);
            }
            b.barrier_all();

            // Phase 3: interior blocks read the two perimeter blocks — the
            // read-shared phase — and update themselves.
            for i in (k + 1)..nb {
                for j in (k + 1)..nb {
                    let p = owner(i, j);
                    read_block(&mut b, p, &matrix, &params, i, k);
                    read_block(&mut b, p, &matrix, &params, k, j);
                    touch_block(&mut b, p, &matrix, &params, i, j, true);
                }
            }
            b.barrier_all();
        }
    }
}

/// Read every cache line of block `(bi, bj)`.
fn read_block(
    b: &mut TraceWriter<&mut dyn EventSink>,
    p: ProcId,
    matrix: &Segment,
    params: &LuParams,
    bi: u64,
    bj: u64,
) {
    for_each_line(matrix, params, bi, bj, |addr| b.read(p, addr));
}

/// Read-modify-write every cache line of block `(bi, bj)` (`write` selects
/// whether the writes are emitted; reads always are).
fn touch_block(
    b: &mut TraceWriter<&mut dyn EventSink>,
    p: ProcId,
    matrix: &Segment,
    params: &LuParams,
    bi: u64,
    bj: u64,
    write: bool,
) {
    for_each_line(matrix, params, bi, bj, |addr| {
        b.read(p, addr);
        if write {
            b.write(p, addr);
        }
    });
}

/// Visit the first address of every cache line of block `(bi, bj)` of the
/// row-major `n x n` matrix.
fn for_each_line<F: FnMut(mem_trace::GlobalAddr)>(
    matrix: &Segment,
    params: &LuParams,
    bi: u64,
    bj: u64,
    mut f: F,
) {
    let row0 = bi * params.block;
    let col0 = bj * params.block;
    for r in 0..params.block {
        let mut c = 0;
        while c < params.block {
            f(matrix.elem2(row0 + r, col0 + c, params.n));
            c += DOUBLES_PER_LINE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::Topology;

    #[test]
    fn reduced_trace_is_valid_and_has_a_read_phase() {
        let cfg = WorkloadConfig::reduced();
        let trace = Lu.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        // Reads dominate: the interior update reads two blocks for every
        // block it writes.
        assert!(stats.reads > stats.writes);
        // Barriers separate every phase of every elimination step.
        assert!(stats.barriers >= 3 * LuParams::for_scale(Scale::Reduced).blocks_per_dim());
        // The matrix is shared across nodes.
        assert!(stats.node_shared_pages > 4);
    }

    #[test]
    fn paper_scale_is_larger() {
        let small = Lu.generate(&WorkloadConfig::reduced().with_topology(Topology::new(2, 2)));
        // Only compare footprints (generating the full paper-size trace is
        // slow); the paper matrix is several times larger.
        let params_small = LuParams::for_scale(Scale::Reduced);
        let params_big = LuParams::for_scale(Scale::Paper);
        assert!(params_big.n * params_big.n >= 4 * params_small.n * params_small.n);
        assert!(small.stats().footprint_pages >= params_small.n * params_small.n * 8 / 4096);
    }

    #[test]
    fn blocks_are_scattered_across_processors() {
        let cfg = WorkloadConfig::reduced();
        let trace = Lu.generate(&cfg);
        // Every processor must issue some accesses.
        for (i, events) in trace.per_proc.iter().enumerate() {
            let accesses = events.iter().filter(|e| e.is_access()).count();
            assert!(accesses > 0, "processor {i} issues no accesses");
        }
    }
}
