//! `cholesky` — blocked sparse Cholesky factorization (SPLASH-2 Cholesky,
//! tk16.O input).
//!
//! Supernodes (groups of adjacent columns with identical sparsity) are
//! processed from a shared task queue.  Completing a supernode updates a set
//! of later columns determined by the sparsity pattern.  Two properties the
//! paper's analysis depends on:
//!
//! * the matrix is initialised by processor 0 and the dynamic task queue
//!   destroys any stable page-to-processor affinity, so page operations of
//!   any kind (migration, replication, relocation) rarely pay off — the
//!   *kernel has little reuse of the pages it touches*;
//! * R-NUMA still relocates aggressively (the refetch counters fire on the
//!   streaming updates), and every relocation's flush-and-refetch shows up
//!   as extra misses — which is why cholesky is one of the two applications
//!   where R-NUMA's relocation overhead lands on the critical path.

use crate::config::{Scale, WorkloadConfig};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, StepGenerator, StepWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Blocked sparse Cholesky factorization.
pub struct Cholesky;

struct CholeskyParams {
    /// Number of supernodes in the (synthetic) elimination tree.
    supernodes: u64,
    /// Cache lines per supernode panel.
    lines_per_supernode: u64,
    /// Columns updated per completed supernode.
    updates_per_supernode: u64,
    /// Cache lines touched per column update.
    lines_per_update: u64,
}

impl CholeskyParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => CholeskyParams {
                supernodes: 384,
                lines_per_supernode: 48,
                updates_per_supernode: 6,
                lines_per_update: 16,
            },
            Scale::Paper => CholeskyParams {
                supernodes: 2048,
                lines_per_supernode: 64,
                updates_per_supernode: 8,
                lines_per_update: 24,
            },
            // The elimination tree carries the factor; per-supernode
            // structure is the paper's.
            Scale::Custom(c) => CholeskyParams {
                supernodes: c.of(2048).max(64),
                lines_per_supernode: 64,
                updates_per_supernode: 8,
                lines_per_update: 24,
            },
        }
    }
}

/// Supernode panels initialised per load step (bounds each step's
/// emission).
const LOAD_CHUNK: u64 = 32;

enum CholeskyState {
    Load { from: u64 },
    Factor { sn: u64 },
    Finish,
}

struct CholeskyGen {
    params: CholeskyParams,
    procs: u64,
    panels: Segment,
    queue: Segment,
    w: StepWriter,
    rng: SmallRng,
    state: CholeskyState,
}

impl CholeskyGen {
    fn new(cfg: &WorkloadConfig) -> Self {
        let params = CholeskyParams::for_scale(cfg.scale);
        let mut space = AddressSpace::new();
        let panels = space.alloc("panels", params.supernodes * params.lines_per_supernode, 64);
        let queue = space.alloc("task_queue", 64, 64);
        CholeskyGen {
            params,
            procs: cfg.topology.total_procs() as u64,
            panels,
            queue,
            w: StepWriter::new(cfg.topology).with_think_cycles(cfg.think_cycles),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xc401),
            state: CholeskyState::Load { from: 0 },
        }
    }

    fn panel_line(&self, sn: u64, line: u64) -> mem_trace::GlobalAddr {
        self.panels
            .elem(sn * self.params.lines_per_supernode + line)
    }
}

impl StepGenerator for CholeskyGen {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        match self.state {
            // Processor 0 loads the sparse matrix: every panel page is
            // homed on node 0 by first-touch.
            CholeskyState::Load { from } => {
                let to = (from + LOAD_CHUNK).min(self.params.supernodes);
                for sn in from..to {
                    for line in 0..self.params.lines_per_supernode {
                        let addr = self.panel_line(sn, line);
                        self.w.write(sink, ProcId(0), addr);
                    }
                }
                if to < self.params.supernodes {
                    self.state = CholeskyState::Load { from: to };
                } else {
                    self.w.barrier_all(sink);
                    self.state = CholeskyState::Factor { sn: 0 };
                }
            }
            // Task-queue driven factorization.  Tasks are dealt round-robin
            // to emulate self-scheduling; each dequeue goes through the
            // queue lock.
            CholeskyState::Factor { sn } => {
                let supernodes = self.params.supernodes;
                let p = ProcId((sn % self.procs) as u16);
                // Dequeue.
                self.w.lock(sink, p, 0);
                let q0 = self.queue.elem(0);
                self.w.read(sink, p, q0);
                self.w.write(sink, p, q0);
                self.w.unlock(sink, p, 0);

                // Factor the supernode panel: read-modify-write every line
                // once (streaming, no reuse).
                for line in 0..self.params.lines_per_supernode {
                    let addr = self.panel_line(sn, line);
                    self.w.read(sink, p, addr);
                    self.w.write(sink, p, addr);
                }

                // Update later columns selected by the (synthetic) sparsity
                // pattern: reads of this panel, scattered writes into later
                // panels.
                for _ in 0..self.params.updates_per_supernode {
                    if sn + 1 >= supernodes {
                        break;
                    }
                    let target = sn + 1 + self.rng.gen_range(0..(supernodes - sn - 1)).min(64);
                    for line in 0..self.params.lines_per_update {
                        let src = self.rng.gen_range(0..self.params.lines_per_supernode);
                        let src_addr = self.panel_line(sn, src);
                        let tgt_addr = self.panel_line(target, line);
                        self.w.read(sink, p, src_addr);
                        self.w.read(sink, p, tgt_addr);
                        self.w.write(sink, p, tgt_addr);
                    }
                }

                if sn + 1 < supernodes {
                    self.state = CholeskyState::Factor { sn: sn + 1 };
                } else {
                    self.w.barrier_all(sink);
                    self.state = CholeskyState::Finish;
                }
            }
            CholeskyState::Finish => {
                self.w.finish(sink);
                return false;
            }
        }
        true
    }
}

impl Workload for Cholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn description(&self) -> &'static str {
        "Blocked sparse Cholesky factorization"
    }

    fn paper_input(&self) -> &'static str {
        "tk16.O"
    }

    fn reduced_input(&self) -> &'static str {
        "synthetic tk16-like matrix, 384 supernodes"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        crate::run_stepper(self.stepper(cfg), sink);
    }

    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        Box::new(CholeskyGen::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_with_task_queue_locking() {
        let cfg = WorkloadConfig::reduced();
        let trace = Cholesky.generate(&cfg);
        assert!(trace.validate().is_ok());
        let locks = trace
            .per_proc
            .iter()
            .flat_map(|e| e.iter())
            .filter(|e| matches!(e, mem_trace::TraceEvent::Lock(_)))
            .count() as u64;
        assert_eq!(locks, CholeskyParams::for_scale(Scale::Reduced).supernodes);
    }

    #[test]
    fn panels_are_shared_because_of_dynamic_scheduling() {
        let stats = Cholesky.generate(&WorkloadConfig::reduced()).stats();
        assert!(stats.node_shared_pages * 2 > stats.footprint_pages);
    }

    #[test]
    fn writes_are_substantial() {
        let stats = Cholesky.generate(&WorkloadConfig::reduced()).stats();
        assert!(stats.write_fraction() > 0.3);
    }

    #[test]
    fn custom_scale_grows_the_elimination_tree() {
        use crate::config::CustomScale;
        let double = CholeskyParams::for_scale(Scale::Custom(CustomScale::new(2, 1)));
        assert_eq!(double.supernodes, 4096);
        assert_eq!(double.lines_per_supernode, 64, "panel shape is the paper's");
    }
}
