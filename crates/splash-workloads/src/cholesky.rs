//! `cholesky` — blocked sparse Cholesky factorization (SPLASH-2 Cholesky,
//! tk16.O input).
//!
//! Supernodes (groups of adjacent columns with identical sparsity) are
//! processed from a shared task queue.  Completing a supernode updates a set
//! of later columns determined by the sparsity pattern.  Two properties the
//! paper's analysis depends on:
//!
//! * the matrix is initialised by processor 0 and the dynamic task queue
//!   destroys any stable page-to-processor affinity, so page operations of
//!   any kind (migration, replication, relocation) rarely pay off — the
//!   *kernel has little reuse of the pages it touches*;
//! * R-NUMA still relocates aggressively (the refetch counters fire on the
//!   streaming updates), and every relocation's flush-and-refetch shows up
//!   as extra misses — which is why cholesky is one of the two applications
//!   where R-NUMA's relocation overhead lands on the critical path.

use crate::config::{Scale, WorkloadConfig};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, TraceWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Blocked sparse Cholesky factorization.
pub struct Cholesky;

struct CholeskyParams {
    /// Number of supernodes in the (synthetic) elimination tree.
    supernodes: u64,
    /// Cache lines per supernode panel.
    lines_per_supernode: u64,
    /// Columns updated per completed supernode.
    updates_per_supernode: u64,
    /// Cache lines touched per column update.
    lines_per_update: u64,
}

impl CholeskyParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => CholeskyParams {
                supernodes: 384,
                lines_per_supernode: 48,
                updates_per_supernode: 6,
                lines_per_update: 16,
            },
            Scale::Paper => CholeskyParams {
                supernodes: 2048,
                lines_per_supernode: 64,
                updates_per_supernode: 8,
                lines_per_update: 24,
            },
        }
    }
}

impl Workload for Cholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn description(&self) -> &'static str {
        "Blocked sparse Cholesky factorization"
    }

    fn paper_input(&self) -> &'static str {
        "tk16.O"
    }

    fn reduced_input(&self) -> &'static str {
        "synthetic tk16-like matrix, 384 supernodes"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        let params = CholeskyParams::for_scale(cfg.scale);
        let procs = cfg.topology.total_procs();

        let mut space = AddressSpace::new();
        let panels = space.alloc("panels", params.supernodes * params.lines_per_supernode, 64);
        let queue = space.alloc("task_queue", 64, 64);

        let mut b = TraceWriter::new(cfg.topology, sink).with_think_cycles(cfg.think_cycles);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xc401);

        let panel_line = |sn: u64, line: u64| panels.elem(sn * params.lines_per_supernode + line);

        // Processor 0 loads the sparse matrix: every panel page is homed on
        // node 0 by first-touch.
        for sn in 0..params.supernodes {
            for line in 0..params.lines_per_supernode {
                b.write(ProcId(0), panel_line(sn, line));
            }
        }
        b.barrier_all();

        // Task-queue driven factorization.  Tasks are dealt round-robin to
        // emulate self-scheduling; each dequeue goes through the queue lock.
        for sn in 0..params.supernodes {
            let p = ProcId((sn % procs as u64) as u16);
            // Dequeue.
            b.lock(p, 0);
            b.read(p, queue.elem(0));
            b.write(p, queue.elem(0));
            b.unlock(p, 0);

            // Factor the supernode panel: read-modify-write every line once
            // (streaming, no reuse).
            for line in 0..params.lines_per_supernode {
                b.read(p, panel_line(sn, line));
                b.write(p, panel_line(sn, line));
            }

            // Update later columns selected by the (synthetic) sparsity
            // pattern: reads of this panel, scattered writes into later
            // panels.
            for _ in 0..params.updates_per_supernode {
                if sn + 1 >= params.supernodes {
                    break;
                }
                let target = sn + 1 + rng.gen_range(0..(params.supernodes - sn - 1)).min(64);
                for line in 0..params.lines_per_update {
                    let src = rng.gen_range(0..params.lines_per_supernode);
                    b.read(p, panel_line(sn, src));
                    b.read(p, panel_line(target, line));
                    b.write(p, panel_line(target, line));
                }
            }
        }
        b.barrier_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_with_task_queue_locking() {
        let cfg = WorkloadConfig::reduced();
        let trace = Cholesky.generate(&cfg);
        assert!(trace.validate().is_ok());
        let locks = trace
            .per_proc
            .iter()
            .flat_map(|e| e.iter())
            .filter(|e| matches!(e, mem_trace::TraceEvent::Lock(_)))
            .count() as u64;
        assert_eq!(locks, CholeskyParams::for_scale(Scale::Reduced).supernodes);
    }

    #[test]
    fn panels_are_shared_because_of_dynamic_scheduling() {
        let stats = Cholesky.generate(&WorkloadConfig::reduced()).stats();
        assert!(stats.node_shared_pages * 2 > stats.footprint_pages);
    }

    #[test]
    fn writes_are_substantial() {
        let stats = Cholesky.generate(&WorkloadConfig::reduced()).stats();
        assert!(stats.write_fraction() > 0.3);
    }
}
