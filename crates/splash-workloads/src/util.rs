//! Shared helpers for the workload generators.

use mem_trace::{EventSink, ProcId, StepWriter, Topology};

/// Advance a step generator past one processor's slice of a phase: either
/// to the next processor of the same phase, or — emitting the phase
/// barrier — to the next phase.  Every per-processor-phased generator
/// (radix, ocean, barnes, fmm, raytrace) routes its state transitions
/// through this one helper so the barrier-at-phase-end rule cannot diverge
/// between them.
pub(crate) fn advance_proc_phase<S>(
    w: &mut StepWriter,
    sink: &mut dyn EventSink,
    p: usize,
    procs: usize,
    same_phase: impl FnOnce(usize) -> S,
    next_phase: impl FnOnce() -> S,
) -> S {
    if p + 1 < procs {
        same_phase(p + 1)
    } else {
        w.barrier_all(sink);
        next_phase()
    }
}

/// Split `0..n` into `parts` contiguous ranges, as evenly as possible.
/// (The generators' hot paths use [`owned_range`]; this whole-partition
/// view remains as the reference the tests check it against.)
#[cfg(test)]
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0);
    (0..parts).map(|i| nth_chunk(n, parts, i)).collect()
}

/// The `i`-th of `parts` contiguous ranges splitting `0..n` — computed
/// arithmetically, no vector of all ranges.  The first `n % parts` chunks
/// are one longer, exactly as [`chunk_ranges`] lays them out.
fn nth_chunk(n: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    let base = n / parts;
    let extra = n % parts;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    start..start + len
}

/// The range of items owned by `proc` when `n` items are block-distributed
/// over all processors.
///
/// This sits inside every generator's per-phase loops, so it computes the
/// single processor's range directly instead of materializing (and then
/// cloning one element of) the whole partition.
pub fn owned_range(n: usize, topology: Topology, proc: ProcId) -> std::ops::Range<usize> {
    nth_chunk(n, topology.total_procs(), proc.index())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_without_overlap() {
        for (n, parts) in [(10, 3), (32, 32), (7, 8), (100, 1)] {
            let ranges = chunk_ranges(n, parts);
            assert_eq!(ranges.len(), parts);
            let mut covered = 0;
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                expected_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let ranges = chunk_ranges(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn owned_range_respects_topology() {
        let topo = Topology::new(2, 2);
        assert_eq!(owned_range(8, topo, ProcId(0)), 0..2);
        assert_eq!(owned_range(8, topo, ProcId(3)), 6..8);
    }

    #[test]
    fn owned_range_agrees_with_chunk_ranges_everywhere() {
        for (n, topo) in [
            (0, Topology::new(2, 2)),
            (7, Topology::new(2, 2)),
            (130, Topology::new(8, 4)),
            (1 << 17, Topology::new(8, 4)),
            (31, Topology::new(16, 2)),
        ] {
            let all = chunk_ranges(n, topo.total_procs());
            for p in topo.proc_ids() {
                assert_eq!(owned_range(n, topo, p), all[p.index()], "n={n} proc={p:?}");
            }
        }
    }
}
