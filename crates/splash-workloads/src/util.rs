//! Shared helpers for the workload generators.

use mem_trace::{ProcId, Topology};

/// Split `0..n` into `parts` contiguous ranges, as evenly as possible.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// The range of items owned by `proc` when `n` items are block-distributed
/// over all processors.
pub fn owned_range(n: usize, topology: Topology, proc: ProcId) -> std::ops::Range<usize> {
    chunk_ranges(n, topology.total_procs())[proc.index()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_without_overlap() {
        for (n, parts) in [(10, 3), (32, 32), (7, 8), (100, 1)] {
            let ranges = chunk_ranges(n, parts);
            assert_eq!(ranges.len(), parts);
            let mut covered = 0;
            let mut expected_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expected_start);
                expected_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let ranges = chunk_ranges(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn owned_range_respects_topology() {
        let topo = Topology::new(2, 2);
        assert_eq!(owned_range(8, topo, ProcId(0)), 0..2);
        assert_eq!(owned_range(8, topo, ProcId(3)), 6..8);
    }
}
