//! `fmm` — adaptive Fast Multipole Method N-body simulation (SPLASH-2 FMM).
//!
//! Space is decomposed into boxes; each box carries multipole and local
//! expansions.  Work is partitioned spatially, so a box's interaction list
//! consists almost entirely of boxes owned by the same or a neighbouring
//! processor — the read-write sharing degree of a box page is low and
//! *static*.  Because the whole box array is initialised by processor 0
//! (as the sequential setup phase of the original program does), first-touch
//! homes every box page on node 0; during the compute phase each page has a
//! single dominant remote user, which is exactly the situation page
//! *migration* exploits (the paper reports 54 migrations and essentially no
//! replications per node for fmm).

use crate::config::{Scale, WorkloadConfig};
use crate::util::{advance_proc_phase, owned_range};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, StepGenerator, StepWriter, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fast Multipole Method N-body simulation.
pub struct Fmm;

struct FmmParams {
    /// Number of spatial boxes.
    boxes: u64,
    /// Cache lines of expansion data per box.
    lines_per_box: u64,
    /// Timesteps.
    timesteps: u64,
    /// Interaction-list length per box.
    interactions: u64,
}

impl FmmParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => FmmParams {
                boxes: 512,
                lines_per_box: 20,
                timesteps: 10,
                interactions: 16,
            },
            Scale::Paper => FmmParams {
                boxes: 4096,
                lines_per_box: 20,
                timesteps: 5,
                interactions: 27,
            },
            // The box decomposition carries the factor; per-box structure
            // and timesteps are the paper's.
            Scale::Custom(c) => FmmParams {
                boxes: c.of(4096).max(64),
                lines_per_box: 20,
                timesteps: 5,
                interactions: 27,
            },
        }
    }
}

/// Boxes initialised per setup step (keeps each step's emission bounded).
const SETUP_CHUNK: u64 = 256;

enum FmmState {
    Setup { from: u64 },
    Compute { step: u64, p: usize },
    Finish,
}

struct FmmGen {
    params: FmmParams,
    topology: Topology,
    procs: usize,
    boxes: Segment,
    w: StepWriter,
    rng: SmallRng,
    state: FmmState,
}

impl FmmGen {
    fn new(cfg: &WorkloadConfig) -> Self {
        let params = FmmParams::for_scale(cfg.scale);
        let mut space = AddressSpace::new();
        let boxes = space.alloc("boxes", params.boxes * params.lines_per_box, 64);
        FmmGen {
            params,
            topology: cfg.topology,
            procs: cfg.topology.total_procs(),
            boxes,
            w: StepWriter::new(cfg.topology).with_think_cycles(cfg.think_cycles),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xf33),
            state: FmmState::Setup { from: 0 },
        }
    }

    fn line_of(&self, box_id: u64, line: u64) -> mem_trace::GlobalAddr {
        self.boxes.elem(box_id * self.params.lines_per_box + line)
    }
}

impl StepGenerator for FmmGen {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        match self.state {
            // Sequential setup: processor 0 initialises every box, so every
            // box page is first-touch homed on node 0.
            FmmState::Setup { from } => {
                let to = (from + SETUP_CHUNK).min(self.params.boxes);
                for box_id in from..to {
                    for line in 0..self.params.lines_per_box {
                        let addr = self.line_of(box_id, line);
                        self.w.write(sink, ProcId(0), addr);
                    }
                }
                if to < self.params.boxes {
                    self.state = FmmState::Setup { from: to };
                } else {
                    self.w.barrier_all(sink);
                    self.state = FmmState::Compute { step: 0, p: 0 };
                }
            }
            // Upward + interaction + downward passes, collapsed into one
            // phase per box: read the interaction list (spatial neighbours,
            // i.e. mostly boxes of the same owner), update own expansions.
            FmmState::Compute { step, p } => {
                let params_boxes = self.params.boxes;
                let interactions = self.params.interactions;
                let lines_per_box = self.params.lines_per_box;
                let proc = ProcId(p as u16);
                let owned = owned_range(params_boxes as usize, self.topology, proc);
                let owned_len = owned.len() as u64;
                for box_id in owned.clone() {
                    let box_id = box_id as u64;
                    for i in 0..interactions {
                        // 80% of the interaction list stays within the
                        // processor's own spatial region, the rest spills to
                        // the neighbouring region.
                        let neighbor = if self.rng.gen_range(0..10) < 8 || owned_len == 0 {
                            owned.start as u64 + self.rng.gen_range(0..owned_len.max(1))
                        } else {
                            (box_id + params_boxes + i - interactions / 2) % params_boxes
                        };
                        let line = self.rng.gen_range(0..lines_per_box);
                        let addr = self.line_of(neighbor, line);
                        self.w.read(sink, proc, addr);
                    }
                    for line in 0..lines_per_box / 2 {
                        let addr = self.line_of(box_id, line);
                        self.w.read(sink, proc, addr);
                        self.w.write(sink, proc, addr);
                    }
                }
                let timesteps = self.params.timesteps;
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| FmmState::Compute { step, p },
                    || {
                        if step + 1 < timesteps {
                            FmmState::Compute {
                                step: step + 1,
                                p: 0,
                            }
                        } else {
                            FmmState::Finish
                        }
                    },
                );
            }
            FmmState::Finish => {
                self.w.finish(sink);
                return false;
            }
        }
        true
    }
}

impl Workload for Fmm {
    fn name(&self) -> &'static str {
        "fmm"
    }

    fn description(&self) -> &'static str {
        "Fast Multipole N-body simulation"
    }

    fn paper_input(&self) -> &'static str {
        "16K particles"
    }

    fn reduced_input(&self) -> &'static str {
        "2K particles (512 boxes)"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        crate::run_stepper(self.stepper(cfg), sink);
    }

    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        Box::new(FmmGen::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::{PageId, TraceEvent};
    use std::collections::HashMap;

    #[test]
    fn trace_is_valid() {
        let cfg = WorkloadConfig::reduced();
        let trace = Fmm.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        assert!(stats.reads > stats.writes);
    }

    #[test]
    fn box_pages_have_a_single_dominant_remote_user() {
        // For a sample of pages, the processor that touches the page most
        // after the setup phase should account for the overwhelming majority
        // of its accesses — the property migration exploits.
        let cfg = WorkloadConfig::reduced();
        let trace = Fmm.generate(&cfg);
        let mut per_page: HashMap<PageId, HashMap<usize, u64>> = HashMap::new();
        for (p, events) in trace.per_proc.iter().enumerate() {
            if p == 0 {
                continue; // skip the initialising processor
            }
            for e in events {
                if let TraceEvent::Access(m) = e {
                    *per_page.entry(m.page()).or_default().entry(p).or_insert(0) += 1;
                }
            }
        }
        let mut dominated = 0usize;
        let mut total = 0usize;
        for (_page, counts) in per_page.iter() {
            let sum: u64 = counts.values().sum();
            let max = counts.values().copied().max().unwrap_or(0);
            if sum >= 50 {
                total += 1;
                if max * 10 >= sum * 7 {
                    dominated += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            dominated * 10 >= total * 6,
            "only {dominated}/{total} pages are dominated by one user"
        );
    }

    #[test]
    fn custom_scale_grows_the_box_decomposition() {
        use crate::config::CustomScale;
        let double = FmmParams::for_scale(Scale::Custom(CustomScale::new(2, 1)));
        assert_eq!(double.boxes, 8192);
        assert_eq!(double.lines_per_box, 20);
        assert_eq!(double.timesteps, 5);
    }
}
