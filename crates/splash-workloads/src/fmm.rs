//! `fmm` — adaptive Fast Multipole Method N-body simulation (SPLASH-2 FMM).
//!
//! Space is decomposed into boxes; each box carries multipole and local
//! expansions.  Work is partitioned spatially, so a box's interaction list
//! consists almost entirely of boxes owned by the same or a neighbouring
//! processor — the read-write sharing degree of a box page is low and
//! *static*.  Because the whole box array is initialised by processor 0
//! (as the sequential setup phase of the original program does), first-touch
//! homes every box page on node 0; during the compute phase each page has a
//! single dominant remote user, which is exactly the situation page
//! *migration* exploits (the paper reports 54 migrations and essentially no
//! replications per node for fmm).

use crate::config::{Scale, WorkloadConfig};
use crate::util::owned_range;
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, TraceWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fast Multipole Method N-body simulation.
pub struct Fmm;

struct FmmParams {
    /// Number of spatial boxes.
    boxes: u64,
    /// Cache lines of expansion data per box.
    lines_per_box: u64,
    /// Timesteps.
    timesteps: u64,
    /// Interaction-list length per box.
    interactions: u64,
}

impl FmmParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => FmmParams {
                boxes: 512,
                lines_per_box: 20,
                timesteps: 10,
                interactions: 16,
            },
            Scale::Paper => FmmParams {
                boxes: 4096,
                lines_per_box: 20,
                timesteps: 5,
                interactions: 27,
            },
        }
    }
}

impl Workload for Fmm {
    fn name(&self) -> &'static str {
        "fmm"
    }

    fn description(&self) -> &'static str {
        "Fast Multipole N-body simulation"
    }

    fn paper_input(&self) -> &'static str {
        "16K particles"
    }

    fn reduced_input(&self) -> &'static str {
        "2K particles (512 boxes)"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        let params = FmmParams::for_scale(cfg.scale);
        let procs = cfg.topology.total_procs();

        let mut space = AddressSpace::new();
        let boxes = space.alloc("boxes", params.boxes * params.lines_per_box, 64);

        let mut b = TraceWriter::new(cfg.topology, sink).with_think_cycles(cfg.think_cycles);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xf33);

        let line_of = |box_id: u64, line: u64| boxes.elem(box_id * params.lines_per_box + line);

        // Sequential setup: processor 0 initialises every box, so every box
        // page is first-touch homed on node 0.
        for box_id in 0..params.boxes {
            for line in 0..params.lines_per_box {
                b.write(ProcId(0), line_of(box_id, line));
            }
        }
        b.barrier_all();

        for _step in 0..params.timesteps {
            // Upward + interaction + downward passes, collapsed into one
            // phase per box: read the interaction list (spatial neighbours,
            // i.e. mostly boxes of the same owner), update own expansions.
            for p in 0..procs {
                let proc = ProcId(p as u16);
                let owned = owned_range(params.boxes as usize, cfg.topology, proc);
                let owned_len = owned.len() as u64;
                for box_id in owned.clone() {
                    let box_id = box_id as u64;
                    for i in 0..params.interactions {
                        // 80% of the interaction list stays within the
                        // processor's own spatial region, the rest spills to
                        // the neighbouring region.
                        let neighbor = if rng.gen_range(0..10) < 8 || owned_len == 0 {
                            owned.start as u64 + rng.gen_range(0..owned_len.max(1))
                        } else {
                            (box_id + params.boxes + i - params.interactions / 2) % params.boxes
                        };
                        b.read(
                            proc,
                            line_of(neighbor, rng.gen_range(0..params.lines_per_box)),
                        );
                    }
                    for line in 0..params.lines_per_box / 2 {
                        b.read(proc, line_of(box_id, line));
                        b.write(proc, line_of(box_id, line));
                    }
                }
            }
            b.barrier_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_trace::{PageId, TraceEvent};
    use std::collections::HashMap;

    #[test]
    fn trace_is_valid() {
        let cfg = WorkloadConfig::reduced();
        let trace = Fmm.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        assert!(stats.reads > stats.writes);
    }

    #[test]
    fn box_pages_have_a_single_dominant_remote_user() {
        // For a sample of pages, the processor that touches the page most
        // after the setup phase should account for the overwhelming majority
        // of its accesses — the property migration exploits.
        let cfg = WorkloadConfig::reduced();
        let trace = Fmm.generate(&cfg);
        let mut per_page: HashMap<PageId, HashMap<usize, u64>> = HashMap::new();
        for (p, events) in trace.per_proc.iter().enumerate() {
            if p == 0 {
                continue; // skip the initialising processor
            }
            for e in events {
                if let TraceEvent::Access(m) = e {
                    *per_page.entry(m.page()).or_default().entry(p).or_insert(0) += 1;
                }
            }
        }
        let mut dominated = 0usize;
        let mut total = 0usize;
        for (_page, counts) in per_page.iter() {
            let sum: u64 = counts.values().sum();
            let max = counts.values().copied().max().unwrap_or(0);
            if sum >= 50 {
                total += 1;
                if max * 10 >= sum * 7 {
                    dominated += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            dominated * 10 >= total * 6,
            "only {dominated}/{total} pages are dominated by one user"
        );
    }
}
