//! SPLASH-2-like shared-memory workload generators (Table 2 of the paper).
//!
//! The paper drives its simulated cluster with seven SPLASH-2 applications.
//! Porting the original C/PARMACS sources is out of scope for this
//! reproduction; instead each application is re-implemented as a *trace
//! generator* that reproduces the data layout, work distribution and sharing
//! structure the paper's analysis depends on:
//!
//! | Workload  | Paper input            | Property the paper relies on                                   |
//! |-----------|------------------------|----------------------------------------------------------------|
//! | barnes    | 16K particles          | read-shared tree cells (replication candidates), high R/W sharing of bodies |
//! | cholesky  | tk16.O                 | task-queue kernel with little reuse of relocated pages          |
//! | fmm       | 16K particles          | near-static partitioning → page migration opportunities         |
//! | lu        | 512x512, 16x16 blocks  | per-iteration read phase of the pivot panel → replication wins  |
//! | ocean     | 130x130 ocean          | block-partitioned stencil, boundary-only sharing                |
//! | radix     | 1M keys, radix 1024    | all-to-all permutation writes, large streaming working set      |
//! | raytrace  | car                    | large read-shared scene, work-stealing queue                    |
//!
//! Each generator supports the paper's Table 2 sizes ([`Scale::Paper`]),
//! the default [`Scale::Reduced`] (sizes scaled down so an entire figure
//! regenerates in seconds), and [`Scale::Custom`] — an arbitrary rational
//! multiple of the Table 2 data sets, opening problem sizes *past* the
//! paper's as a real experiment axis.  Because the paper's results are
//! ratios against perfect CC-NUMA on the same trace, the non-paper scales
//! preserve the comparisons; EXPERIMENTS.md reports both.
//!
//! Every generator is a **resumable step-function**
//! ([`Workload::stepper`]): each step emits one processor's slice of one
//! phase.  All three trace deliveries drive the same stepper — materialized
//! ([`Workload::generate`]), fused into the consumer's pull loop
//! ([`fused`]) and streamed through a generator thread
//! ([`stream_threaded`]) — so they are bit-identical by construction.

pub mod barnes;
pub mod cholesky;
pub mod config;
pub mod fmm;
pub mod lu;
pub mod ocean;
pub mod radix;
pub mod raytrace;
mod util;

pub use config::{CustomScale, Scale, WorkloadConfig};

use mem_trace::{
    EventSink, FusedSource, ProcId, ProgramTrace, PumpScript, ShardMap, ShardedSource,
    StepGenerator, ThreadedSource, TraceEvent, TraceSource,
};

/// A workload that can generate a shared-memory reference trace.
///
/// Generators are *producers* built around a resumable step-function:
/// [`Workload::stepper`] returns a [`StepGenerator`] whose steps push the
/// trace, event by event in program order, into any [`EventSink`].
/// [`Workload::emit`] is required (for the Table 2 generators it is one
/// line: [`run_stepper`] over their stepper); the default `stepper` falls
/// back to materializing `emit`'s output and replaying it in fair chunks,
/// so a straight-line custom workload only implements `emit` and still
/// works through every pipeline.  All deliveries of a trace drive the same
/// emission code, so they are bit-identical by construction.
pub trait Workload: Send + Sync {
    /// Table 2 name (lowercase).
    fn name(&self) -> &'static str;
    /// One-line description (Table 2 "Problem" column).
    fn description(&self) -> &'static str;
    /// The paper's input parameters (Table 2 "Input Data Set" column).
    fn paper_input(&self) -> &'static str;
    /// The reduced input parameters used by default in this reproduction.
    fn reduced_input(&self) -> &'static str;
    /// Emit the trace into `sink`, event by event in program order
    /// (including the per-processor end-of-stream markers).
    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink);
    /// Build the resumable generator for `cfg`.
    ///
    /// The default materializes [`Workload::emit`] up front and replays it
    /// in fair round-robin chunks — correct for any workload, but the
    /// bounded-memory property of the fused/threaded pipelines then only
    /// holds for traces that fit in memory anyway.  The seven Table 2
    /// generators all implement this directly (and derive `emit` from it
    /// via [`run_stepper`]).
    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        let mut per_proc: Vec<Vec<TraceEvent>> = vec![Vec::new(); cfg.topology.total_procs()];
        self.emit(cfg, &mut per_proc);
        Box::new(ReplaySteps::new(per_proc))
    }
    /// Generate the whole trace in memory.
    fn generate(&self, cfg: &WorkloadConfig) -> ProgramTrace {
        let mut per_proc: Vec<Vec<TraceEvent>> = vec![Vec::new(); cfg.topology.total_procs()];
        self.emit(cfg, &mut per_proc);
        ProgramTrace::new(self.name(), cfg.topology, per_proc)
    }
}

/// Drive a step generator to completion against `sink` — how the Table 2
/// generators implement [`Workload::emit`] in terms of their stepper.
pub fn run_stepper(mut stepper: Box<dyn StepGenerator>, sink: &mut dyn EventSink) {
    while stepper.step(sink) {}
}

/// The fallback stepper behind the default [`Workload::stepper`]: replays
/// pre-materialized per-processor streams in fair round-robin chunks, with
/// end-of-stream markers as each stream drains.
struct ReplaySteps {
    per_proc: Vec<Vec<TraceEvent>>,
    pos: Vec<usize>,
    next: usize,
}

/// Events per processor per [`ReplaySteps`] step: small enough that the
/// demux window stays a rounding error, big enough to amortize dispatch.
const REPLAY_CHUNK: usize = 256;

impl ReplaySteps {
    fn new(per_proc: Vec<Vec<TraceEvent>>) -> Self {
        let procs = per_proc.len();
        ReplaySteps {
            per_proc,
            pos: vec![0; procs],
            next: 0,
        }
    }
}

impl StepGenerator for ReplaySteps {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        let procs = self.per_proc.len();
        for _ in 0..procs {
            let p = self.next;
            self.next = (self.next + 1) % procs;
            let events = &self.per_proc[p];
            if self.pos[p] >= events.len() {
                continue;
            }
            let end = (self.pos[p] + REPLAY_CHUNK).min(events.len());
            for ev in &events[self.pos[p]..end] {
                sink.event(ProcId(p as u16), *ev);
            }
            self.pos[p] = end;
            if end == events.len() {
                sink.end_of_stream(ProcId(p as u16));
            }
            return true;
        }
        false
    }
}

/// Run `workload`'s generator *inside* the consumer's pull loop: no thread,
/// no channel, no batch copies.  The right source when producer and
/// consumer share a core — the common experiment case where every worker
/// thread runs one simulation.
pub fn fused(workload: &dyn Workload, cfg: &WorkloadConfig) -> FusedSource {
    FusedSource::new(workload.name(), cfg.topology, workload.stepper(cfg))
}

/// Run `workload`'s generator on its own thread behind a bounded channel,
/// overlapping generation with the consumer's work when a spare core is
/// available.  Yields the exact event sequences [`fused`] and
/// [`Workload::generate`] would produce.
pub fn stream_threaded(workload: Box<dyn Workload>, cfg: WorkloadConfig) -> ThreadedSource {
    let name = workload.name();
    ThreadedSource::spawn(name, cfg.topology, move |sink| workload.emit(&cfg, sink))
}

/// Stream `workload`'s trace with bounded memory, picking the pipeline
/// automatically: [`fused`] when this process has no spare core to overlap
/// generation on, [`stream_threaded`] otherwise.  Either way the event
/// sequences (and any simulation driven by them) are bit-identical.
pub fn stream(workload: Box<dyn Workload>, cfg: WorkloadConfig) -> Box<dyn TraceSource + Send> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        Box::new(stream_threaded(workload, cfg))
    } else {
        Box::new(fused(&*workload, &cfg))
    }
}

/// One equally constructed stepper replica per shard of `map` — the input
/// shape [`ShardedSource`] and the core crate's `ShardedSimulator` take.
/// Replicas of the same deterministic stepper emit bit-identical global
/// sequences, which is what makes the sharded split exact.
pub fn replicas(
    workload: &dyn Workload,
    cfg: &WorkloadConfig,
    map: ShardMap,
) -> Vec<Box<dyn StepGenerator>> {
    (0..map.shards()).map(|_| workload.stepper(cfg)).collect()
}

/// Run one filtered generator replica per shard on its own supply thread
/// (`workers` as in `ShardMap::new`: clamped to the node count, `0` = one
/// shard).  Event sequences are bit-identical to [`fused`] at any worker
/// count; generation overlaps the consumer, per shard, on spare cores.
pub fn sharded(workload: &dyn Workload, cfg: &WorkloadConfig, workers: usize) -> ShardedSource {
    let map = ShardMap::new(cfg.topology, workers);
    ShardedSource::spawn(workload.name(), map, replicas(workload, cfg, map))
}

/// [`sharded`]'s deterministic single-thread twin: all replicas inline,
/// lane progress interleaved by a schedule scripted from `seed`.  Built for
/// model-checking-style tests that sweep seeds to explore supply
/// interleavings.
pub fn sharded_lockstep(
    workload: &dyn Workload,
    cfg: &WorkloadConfig,
    workers: usize,
    seed: u64,
) -> ShardedSource {
    let map = ShardMap::new(cfg.topology, workers);
    ShardedSource::lockstep(workload.name(), map, replicas(workload, cfg, map), seed)
}

/// [`sharded_lockstep`] with one *explicit* interleaving instead of a
/// seeded one: replays `script` (see `ShardedSource::scripted`).  Built for
/// the exhaustive explorer tests, which enumerate every script at small
/// depth via `ShardedSource::explore` and assert the simulation result is
/// bit-identical across all of them.
pub fn sharded_scripted(
    workload: &dyn Workload,
    cfg: &WorkloadConfig,
    workers: usize,
    script: PumpScript,
) -> ShardedSource {
    let map = ShardMap::new(cfg.topology, workers);
    ShardedSource::scripted(workload.name(), map, replicas(workload, cfg, map), script)
}

/// All seven workloads in Table 2 order.
pub fn catalog() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(barnes::Barnes),
        Box::new(cholesky::Cholesky),
        Box::new(fmm::Fmm),
        Box::new(lu::Lu),
        Box::new(ocean::Ocean),
        Box::new(radix::Radix),
        Box::new(raytrace::Raytrace),
    ]
}

/// Look up a workload by its Table 2 name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    catalog().into_iter().find(|w| w.name() == name)
}

/// The Table 2 names, in order.
pub fn names() -> Vec<&'static str> {
    catalog().iter().map(|w| w.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        assert_eq!(
            names(),
            vec!["barnes", "cholesky", "fmm", "lu", "ocean", "radix", "raytrace"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("lu").is_some());
        assert!(by_name("ocean").is_some());
        assert!(by_name("linpack").is_none());
    }

    #[test]
    fn every_workload_generates_a_valid_trace() {
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let trace = w.generate(&cfg);
            assert_eq!(trace.name, w.name());
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{} trace invalid: {e:?}", w.name()));
            let stats = trace.stats();
            assert!(
                stats.accesses > 1_000,
                "{} trace too small: {} accesses",
                w.name(),
                stats.accesses
            );
            assert!(
                stats.node_shared_pages > 0,
                "{} has no inter-node sharing",
                w.name()
            );
        }
    }

    #[test]
    fn test_scale_emits_fewer_accesses_than_reduced() {
        // The `reduced_for_tests` contract: genuinely smaller problems.
        let test_cfg = WorkloadConfig::reduced_for_tests();
        let reduced_cfg = WorkloadConfig::reduced();
        for w in catalog() {
            let small = w.generate(&test_cfg).stats().accesses;
            let reduced = w.generate(&reduced_cfg).stats().accesses;
            assert!(
                small < reduced,
                "{}: test scale ({small} accesses) not smaller than reduced ({reduced})",
                w.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let a = w.generate(&cfg).stats();
            let b = w.generate(&cfg).stats();
            assert_eq!(a, b, "{} generation not deterministic", w.name());
        }
    }

    #[test]
    fn fused_and_threaded_events_match_materialized_generation() {
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let trace = w.generate(&cfg);
            let mut sources: Vec<(&str, Box<dyn TraceSource + Send>)> = vec![
                ("fused", Box::new(fused(w.as_ref(), &cfg))),
                (
                    "threaded",
                    Box::new(stream_threaded(by_name(w.name()).unwrap(), cfg)),
                ),
            ];
            for (mode, src) in &mut sources {
                assert_eq!(src.name(), w.name());
                for p in cfg.topology.proc_ids() {
                    let mut got = Vec::with_capacity(trace.per_proc[p.index()].len());
                    while let Some(ev) = src.next_event(p) {
                        got.push(ev);
                    }
                    assert_eq!(
                        got,
                        trace.per_proc[p.index()],
                        "{} {mode} stream diverged for {p:?}",
                        w.name()
                    );
                }
                assert_eq!(
                    src.stats_so_far(),
                    trace.stats(),
                    "{} {mode} incremental stats diverged from batch stats",
                    w.name()
                );
                assert!(src.take_error().is_none());
            }
        }
    }

    #[test]
    fn end_markers_make_exhaustion_windows_free() {
        // After a workload's final barrier every processor's end marker is
        // already emitted, so fully draining one processor parks at most
        // the phase skew — not the rest of every other stream.
        let cfg = WorkloadConfig::reduced_for_tests();
        let w = by_name("ocean").unwrap();
        let trace = w.generate(&cfg);
        let mut src = fused(w.as_ref(), &cfg);
        let p0 = ProcId(0);
        while src.next_event(p0).is_some() {}
        assert!(src.exhausted(p0));
        let parked = src.buffered_events();
        let total: usize = trace.per_proc.iter().map(Vec::len).sum();
        assert!(
            parked < total,
            "draining one proc buffered the whole trace ({parked} of {total})"
        );
        assert!(src.take_error().is_none());
    }

    #[test]
    fn default_stepper_fallback_replays_custom_workloads() {
        // A workload that only implements `emit` still works through the
        // fused pipeline via the materialize-and-replay fallback.
        struct EmitOnly;
        impl Workload for EmitOnly {
            fn name(&self) -> &'static str {
                "emit-only"
            }
            fn description(&self) -> &'static str {
                "fallback test"
            }
            fn paper_input(&self) -> &'static str {
                "-"
            }
            fn reduced_input(&self) -> &'static str {
                "-"
            }
            fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
                let mut w = mem_trace::TraceWriter::new(cfg.topology, sink);
                for i in 0..1000u64 {
                    w.write(ProcId((i % 4) as u16), mem_trace::GlobalAddr(i * 64));
                }
                w.barrier_all();
                w.finish();
            }
        }
        let cfg = WorkloadConfig::reduced_for_tests().with_topology(mem_trace::Topology::new(2, 2));
        let trace = EmitOnly.generate(&cfg);
        let mut src = fused(&EmitOnly, &cfg);
        for p in cfg.topology.proc_ids() {
            let mut got = Vec::new();
            while let Some(ev) = src.next_event(p) {
                got.push(ev);
            }
            assert_eq!(got, trace.per_proc[p.index()]);
        }
    }

    #[test]
    fn descriptions_and_inputs_are_populated() {
        for w in catalog() {
            assert!(!w.description().is_empty());
            assert!(!w.paper_input().is_empty());
            assert!(!w.reduced_input().is_empty());
        }
    }
}
