//! SPLASH-2-like shared-memory workload generators (Table 2 of the paper).
//!
//! The paper drives its simulated cluster with seven SPLASH-2 applications.
//! Porting the original C/PARMACS sources is out of scope for this
//! reproduction; instead each application is re-implemented as a *trace
//! generator* that reproduces the data layout, work distribution and sharing
//! structure the paper's analysis depends on:
//!
//! | Workload  | Paper input            | Property the paper relies on                                   |
//! |-----------|------------------------|----------------------------------------------------------------|
//! | barnes    | 16K particles          | read-shared tree cells (replication candidates), high R/W sharing of bodies |
//! | cholesky  | tk16.O                 | task-queue kernel with little reuse of relocated pages          |
//! | fmm       | 16K particles          | near-static partitioning → page migration opportunities         |
//! | lu        | 512x512, 16x16 blocks  | per-iteration read phase of the pivot panel → replication wins  |
//! | ocean     | 130x130 ocean          | block-partitioned stencil, boundary-only sharing                |
//! | radix     | 1M keys, radix 1024    | all-to-all permutation writes, large streaming working set      |
//! | raytrace  | car                    | large read-shared scene, work-stealing queue                    |
//!
//! Each generator supports two problem scales: [`Scale::Paper`] (Table 2
//! sizes) and the default [`Scale::Reduced`] (sizes scaled down so an entire
//! figure regenerates in seconds).  Because the paper's results are ratios
//! against perfect CC-NUMA on the same trace, the reduced scale preserves
//! the comparisons; EXPERIMENTS.md reports both.

pub mod barnes;
pub mod cholesky;
pub mod config;
pub mod fmm;
pub mod lu;
pub mod ocean;
pub mod radix;
pub mod raytrace;
mod util;

pub use config::{Scale, WorkloadConfig};

use mem_trace::ProgramTrace;

/// A workload that can generate a shared-memory reference trace.
pub trait Workload: Send + Sync {
    /// Table 2 name (lowercase).
    fn name(&self) -> &'static str;
    /// One-line description (Table 2 "Problem" column).
    fn description(&self) -> &'static str;
    /// The paper's input parameters (Table 2 "Input Data Set" column).
    fn paper_input(&self) -> &'static str;
    /// The reduced input parameters used by default in this reproduction.
    fn reduced_input(&self) -> &'static str;
    /// Generate the trace.
    fn generate(&self, cfg: &WorkloadConfig) -> ProgramTrace;
}

/// All seven workloads in Table 2 order.
pub fn catalog() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(barnes::Barnes),
        Box::new(cholesky::Cholesky),
        Box::new(fmm::Fmm),
        Box::new(lu::Lu),
        Box::new(ocean::Ocean),
        Box::new(radix::Radix),
        Box::new(raytrace::Raytrace),
    ]
}

/// Look up a workload by its Table 2 name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    catalog().into_iter().find(|w| w.name() == name)
}

/// The Table 2 names, in order.
pub fn names() -> Vec<&'static str> {
    catalog().iter().map(|w| w.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        assert_eq!(
            names(),
            vec!["barnes", "cholesky", "fmm", "lu", "ocean", "radix", "raytrace"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("lu").is_some());
        assert!(by_name("ocean").is_some());
        assert!(by_name("linpack").is_none());
    }

    #[test]
    fn every_workload_generates_a_valid_trace() {
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let trace = w.generate(&cfg);
            assert_eq!(trace.name, w.name());
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{} trace invalid: {e:?}", w.name()));
            let stats = trace.stats();
            assert!(
                stats.accesses > 1_000,
                "{} trace too small: {} accesses",
                w.name(),
                stats.accesses
            );
            assert!(
                stats.node_shared_pages > 0,
                "{} has no inter-node sharing",
                w.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let a = w.generate(&cfg).stats();
            let b = w.generate(&cfg).stats();
            assert_eq!(a, b, "{} generation not deterministic", w.name());
        }
    }

    #[test]
    fn descriptions_and_inputs_are_populated() {
        for w in catalog() {
            assert!(!w.description().is_empty());
            assert!(!w.paper_input().is_empty());
            assert!(!w.reduced_input().is_empty());
        }
    }
}
