//! SPLASH-2-like shared-memory workload generators (Table 2 of the paper).
//!
//! The paper drives its simulated cluster with seven SPLASH-2 applications.
//! Porting the original C/PARMACS sources is out of scope for this
//! reproduction; instead each application is re-implemented as a *trace
//! generator* that reproduces the data layout, work distribution and sharing
//! structure the paper's analysis depends on:
//!
//! | Workload  | Paper input            | Property the paper relies on                                   |
//! |-----------|------------------------|----------------------------------------------------------------|
//! | barnes    | 16K particles          | read-shared tree cells (replication candidates), high R/W sharing of bodies |
//! | cholesky  | tk16.O                 | task-queue kernel with little reuse of relocated pages          |
//! | fmm       | 16K particles          | near-static partitioning → page migration opportunities         |
//! | lu        | 512x512, 16x16 blocks  | per-iteration read phase of the pivot panel → replication wins  |
//! | ocean     | 130x130 ocean          | block-partitioned stencil, boundary-only sharing                |
//! | radix     | 1M keys, radix 1024    | all-to-all permutation writes, large streaming working set      |
//! | raytrace  | car                    | large read-shared scene, work-stealing queue                    |
//!
//! Each generator supports two problem scales: [`Scale::Paper`] (Table 2
//! sizes) and the default [`Scale::Reduced`] (sizes scaled down so an entire
//! figure regenerates in seconds).  Because the paper's results are ratios
//! against perfect CC-NUMA on the same trace, the reduced scale preserves
//! the comparisons; EXPERIMENTS.md reports both.

pub mod barnes;
pub mod cholesky;
pub mod config;
pub mod fmm;
pub mod lu;
pub mod ocean;
pub mod radix;
pub mod raytrace;
mod util;

pub use config::{Scale, WorkloadConfig};

use mem_trace::{EventSink, ProgramTrace, ThreadedSource, TraceEvent};

/// A workload that can generate a shared-memory reference trace.
///
/// Generators are *producers*: [`Workload::emit`] pushes the trace, event by
/// event in program order, into any [`EventSink`].  The same emission drives
/// both the materializing [`Workload::generate`] (full [`ProgramTrace`] in
/// memory) and the bounded-memory [`stream`] pipeline, so the two are
/// bit-identical by construction.
pub trait Workload: Send + Sync {
    /// Table 2 name (lowercase).
    fn name(&self) -> &'static str;
    /// One-line description (Table 2 "Problem" column).
    fn description(&self) -> &'static str;
    /// The paper's input parameters (Table 2 "Input Data Set" column).
    fn paper_input(&self) -> &'static str;
    /// The reduced input parameters used by default in this reproduction.
    fn reduced_input(&self) -> &'static str;
    /// Emit the trace into `sink`, event by event in program order.
    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink);
    /// Generate the whole trace in memory.
    fn generate(&self, cfg: &WorkloadConfig) -> ProgramTrace {
        let mut per_proc: Vec<Vec<TraceEvent>> = vec![Vec::new(); cfg.topology.total_procs()];
        self.emit(cfg, &mut per_proc);
        ProgramTrace::new(self.name(), cfg.topology, per_proc)
    }
}

/// Stream `workload`'s trace instead of materializing it: generation runs on
/// its own thread and the returned [`ThreadedSource`] yields the exact event
/// sequences [`Workload::generate`] would store, with memory bounded by the
/// pipeline's channel instead of the trace size.
pub fn stream(workload: Box<dyn Workload>, cfg: WorkloadConfig) -> ThreadedSource {
    let name = workload.name();
    ThreadedSource::spawn(name, cfg.topology, move |sink| workload.emit(&cfg, sink))
}

/// All seven workloads in Table 2 order.
pub fn catalog() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(barnes::Barnes),
        Box::new(cholesky::Cholesky),
        Box::new(fmm::Fmm),
        Box::new(lu::Lu),
        Box::new(ocean::Ocean),
        Box::new(radix::Radix),
        Box::new(raytrace::Raytrace),
    ]
}

/// Look up a workload by its Table 2 name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    catalog().into_iter().find(|w| w.name() == name)
}

/// The Table 2 names, in order.
pub fn names() -> Vec<&'static str> {
    catalog().iter().map(|w| w.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        assert_eq!(
            names(),
            vec!["barnes", "cholesky", "fmm", "lu", "ocean", "radix", "raytrace"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("lu").is_some());
        assert!(by_name("ocean").is_some());
        assert!(by_name("linpack").is_none());
    }

    #[test]
    fn every_workload_generates_a_valid_trace() {
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let trace = w.generate(&cfg);
            assert_eq!(trace.name, w.name());
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{} trace invalid: {e:?}", w.name()));
            let stats = trace.stats();
            assert!(
                stats.accesses > 1_000,
                "{} trace too small: {} accesses",
                w.name(),
                stats.accesses
            );
            assert!(
                stats.node_shared_pages > 0,
                "{} has no inter-node sharing",
                w.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let a = w.generate(&cfg).stats();
            let b = w.generate(&cfg).stats();
            assert_eq!(a, b, "{} generation not deterministic", w.name());
        }
    }

    #[test]
    fn streamed_events_match_materialized_generation() {
        use mem_trace::TraceSource;
        let cfg = WorkloadConfig::reduced_for_tests();
        for w in catalog() {
            let trace = w.generate(&cfg);
            let mut src = stream(by_name(w.name()).unwrap(), cfg);
            assert_eq!(src.name(), w.name());
            for p in cfg.topology.proc_ids() {
                let mut got = Vec::with_capacity(trace.per_proc[p.index()].len());
                while let Some(ev) = src.next_event(p) {
                    got.push(ev);
                }
                assert_eq!(
                    got,
                    trace.per_proc[p.index()],
                    "{} stream diverged for {p:?}",
                    w.name()
                );
            }
            assert_eq!(
                src.stats_so_far(),
                trace.stats(),
                "{} incremental stats diverged from batch stats",
                w.name()
            );
        }
    }

    #[test]
    fn descriptions_and_inputs_are_populated() {
        for w in catalog() {
            assert!(!w.description().is_empty());
            assert!(!w.paper_input().is_empty());
            assert!(!w.reduced_input().is_empty());
        }
    }
}
