//! Workload configuration: topology, problem scale and seed.

use mem_trace::Topology;

/// A user-chosen problem magnitude, expressed as a rational multiplier on
/// the paper's Table 2 data-set sizes.
///
/// `CustomScale::new(2, 1)` doubles every workload's data set past the
/// paper's inputs (the ROADMAP's "bigger-than-paper" axis);
/// `CustomScale::new(1, 32)` shrinks them to a unit-test sliver.  Each
/// generator applies the multiplier to the parameters that define its data
/// set — element counts scale linearly ([`CustomScale::of`]), the side of a
/// square grid/matrix scales with the square root
/// ([`CustomScale::dim`]) so the *data set* (not its side) carries the
/// factor — while structural constants (radix, block size, passes) keep
/// their Table 2 values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CustomScale {
    numer: u32,
    denom: u32,
}

impl CustomScale {
    /// A `numer/denom` multiplier on the Table 2 data-set sizes.
    ///
    /// # Panics
    /// Panics if either term is zero.
    pub const fn new(numer: u32, denom: u32) -> Self {
        assert!(numer > 0 && denom > 0, "scale factor terms must be nonzero");
        CustomScale { numer, denom }
    }

    /// Scale a linear count (keys, bodies, boxes): `paper * numer / denom`,
    /// floored at 1.
    pub fn of(self, paper: u64) -> u64 {
        (paper * self.numer as u64 / self.denom as u64).max(1)
    }

    /// Scale the side of a square data set so its *area* carries the
    /// factor: `sqrt(paper_dim^2 * numer / denom)`, floored at 1.
    pub fn dim(self, paper_dim: u64) -> u64 {
        (paper_dim * paper_dim * self.numer as u64 / self.denom as u64)
            .isqrt()
            .max(1)
    }

    /// The multiplier as a float (reports, threshold interpolation).
    pub fn factor(self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Short label used on sweep axes and in reports (`"x3"`, `"x1/32"`).
    pub fn label(self) -> String {
        if self.denom == 1 {
            format!("x{}", self.numer)
        } else {
            format!("x{}/{}", self.numer, self.denom)
        }
    }
}

/// Problem-size scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Reduced inputs (default): a figure regenerates in seconds while the
    /// intrinsic sharing behaviour of each application is preserved.
    Reduced,
    /// The paper's Table 2 inputs.  Trace generation and simulation take
    /// substantially longer.
    Paper,
    /// A custom multiple of the Table 2 inputs — smaller than `Reduced` for
    /// unit tests, larger than `Paper` for bigger-than-paper studies.
    Custom(CustomScale),
}

impl Scale {
    /// Short label used on sweep axes and in reports.
    pub fn label(&self) -> String {
        match self {
            Scale::Reduced => "reduced".to_string(),
            Scale::Paper => "paper".to_string(),
            Scale::Custom(c) => c.label(),
        }
    }
}

/// Parameters common to every workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Cluster topology (determines the number of worker processors).
    pub topology: Topology,
    /// Problem-size scale.
    pub scale: Scale,
    /// Seed for the deterministic generators.
    pub seed: u64,
    /// Compute cycles inserted before every shared access, abstracting the
    /// private-data and ALU work between shared references.
    pub think_cycles: u32,
}

/// The custom scale behind [`WorkloadConfig::reduced_for_tests`]: 1/32 of
/// the Table 2 data sets, several times smaller again than `Reduced`.
pub const TEST_SCALE: CustomScale = CustomScale::new(1, 32);

impl WorkloadConfig {
    /// Reduced-scale configuration on the paper's 8x4 cluster.
    pub fn reduced() -> Self {
        WorkloadConfig {
            topology: Topology::PAPER,
            scale: Scale::Reduced,
            seed: 0x00D5_1A1A_2000,
            think_cycles: 4,
        }
    }

    /// Paper-scale (Table 2) configuration on the paper's 8x4 cluster.
    pub fn paper() -> Self {
        WorkloadConfig {
            scale: Scale::Paper,
            ..Self::reduced()
        }
    }

    /// A very small configuration for unit tests: [`TEST_SCALE`] problem
    /// sizes (well under `Reduced`, so every generator emits fewer
    /// accesses), still the full 8x4 cluster.
    pub fn reduced_for_tests() -> Self {
        WorkloadConfig {
            scale: Scale::Custom(TEST_SCALE),
            ..Self::reduced()
        }
    }

    /// Replace the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The default configuration at `scale` (any scale, including custom).
    pub fn at_scale(scale: Scale) -> Self {
        WorkloadConfig {
            scale,
            ..Self::reduced()
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::reduced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reduced_on_the_paper_cluster() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.scale, Scale::Reduced);
        assert_eq!(cfg.topology, Topology::PAPER);
        assert_eq!(cfg, WorkloadConfig::reduced());
    }

    #[test]
    fn builders() {
        let cfg = WorkloadConfig::paper()
            .with_topology(Topology::new(2, 2))
            .with_seed(7);
        assert_eq!(cfg.scale, Scale::Paper);
        assert_eq!(cfg.topology.total_procs(), 4);
        assert_eq!(cfg.seed, 7);
        assert_eq!(WorkloadConfig::at_scale(Scale::Paper).scale, Scale::Paper);
        assert_eq!(
            WorkloadConfig::at_scale(Scale::Reduced).scale,
            Scale::Reduced
        );
        let custom = Scale::Custom(CustomScale::new(3, 2));
        assert_eq!(WorkloadConfig::at_scale(custom).scale, custom);
    }

    #[test]
    fn test_config_is_genuinely_smaller_than_reduced() {
        // `reduced_for_tests` used to claim "fewer emitted accesses" while
        // returning plain `reduced()`; it now really shrinks the problem.
        let cfg = WorkloadConfig::reduced_for_tests();
        assert_eq!(cfg.scale, Scale::Custom(TEST_SCALE));
        assert_ne!(cfg, WorkloadConfig::reduced());
        assert!(TEST_SCALE.factor() < 1.0 / 8.0, "well under Reduced (~1/8)");
    }

    #[test]
    fn custom_scale_arithmetic() {
        let double = CustomScale::new(2, 1);
        assert_eq!(double.of(1024), 2048);
        assert_eq!(double.dim(512), 724); // sqrt(2) * 512, truncated
        assert_eq!(double.label(), "x2");
        assert!((double.factor() - 2.0).abs() < 1e-12);

        let sliver = CustomScale::new(1, 32);
        assert_eq!(sliver.of(1 << 20), 1 << 15);
        assert_eq!(sliver.of(1), 1, "floored at 1");
        assert_eq!(sliver.dim(512), 90);
        assert_eq!(sliver.label(), "x1/32");

        assert_eq!(Scale::Custom(sliver).label(), "x1/32");
        assert_eq!(Scale::Reduced.label(), "reduced");
        assert_eq!(Scale::Paper.label(), "paper");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_scale_terms_are_rejected() {
        let _ = CustomScale::new(0, 4);
    }
}
