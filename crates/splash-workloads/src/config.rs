//! Workload configuration: topology, problem scale and seed.

use mem_trace::Topology;

/// Problem-size scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Reduced inputs (default): a figure regenerates in seconds while the
    /// intrinsic sharing behaviour of each application is preserved.
    Reduced,
    /// The paper's Table 2 inputs.  Trace generation and simulation take
    /// substantially longer.
    Paper,
}

/// Parameters common to every workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Cluster topology (determines the number of worker processors).
    pub topology: Topology,
    /// Problem-size scale.
    pub scale: Scale,
    /// Seed for the deterministic generators.
    pub seed: u64,
    /// Compute cycles inserted before every shared access, abstracting the
    /// private-data and ALU work between shared references.
    pub think_cycles: u32,
}

impl WorkloadConfig {
    /// Reduced-scale configuration on the paper's 8x4 cluster.
    pub fn reduced() -> Self {
        WorkloadConfig {
            topology: Topology::PAPER,
            scale: Scale::Reduced,
            seed: 0x00D5_1A1A_2000,
            think_cycles: 4,
        }
    }

    /// Paper-scale (Table 2) configuration on the paper's 8x4 cluster.
    pub fn paper() -> Self {
        WorkloadConfig {
            scale: Scale::Paper,
            ..Self::reduced()
        }
    }

    /// A very small configuration for unit tests: reduced scale, fewer
    /// emitted accesses, still the full 8x4 cluster.
    pub fn reduced_for_tests() -> Self {
        Self::reduced()
    }

    /// Replace the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pick `reduced` or `paper` by flag.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => Self::reduced(),
            Scale::Paper => Self::paper(),
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::reduced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reduced_on_the_paper_cluster() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.scale, Scale::Reduced);
        assert_eq!(cfg.topology, Topology::PAPER);
        assert_eq!(cfg, WorkloadConfig::reduced());
    }

    #[test]
    fn builders() {
        let cfg = WorkloadConfig::paper()
            .with_topology(Topology::new(2, 2))
            .with_seed(7);
        assert_eq!(cfg.scale, Scale::Paper);
        assert_eq!(cfg.topology.total_procs(), 4);
        assert_eq!(cfg.seed, 7);
        assert_eq!(WorkloadConfig::at_scale(Scale::Paper).scale, Scale::Paper);
        assert_eq!(
            WorkloadConfig::at_scale(Scale::Reduced).scale,
            Scale::Reduced
        );
    }
}
