//! `raytrace` — 3-D scene rendering by ray tracing (SPLASH-2 Raytrace, car
//! scene).
//!
//! The scene database (geometry plus the hierarchical uniform grid used to
//! accelerate intersection tests) is built once and then *read* by every
//! processor while tracing rays; rays are distributed through a work queue.
//! The upper levels of the acceleration structure are touched by every ray
//! and are therefore natural replication candidates, while the bulk of the
//! scene is sampled irregularly so the processor caches thrash — R-NUMA
//! relocates those pages in large numbers (1059 per node in Table 4), but,
//! as the paper notes, the remaining misses are largely off the critical
//! path because rays are independent and plentiful.

use crate::config::{Scale, WorkloadConfig};
use crate::util::owned_range;
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, TraceWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ray-traced rendering of a 3-D scene.
pub struct Raytrace;

struct RaytraceParams {
    /// Cache lines of scene data (geometry + grid).
    scene_lines: u64,
    /// Cache lines of "hot" acceleration-structure data (top grid levels).
    hot_lines: u64,
    /// Rays traced in total.
    rays: u64,
    /// Scene lines read per ray.
    reads_per_ray: u64,
}

impl RaytraceParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => RaytraceParams {
                scene_lines: 12 * 1024, // 768 KB of scene data
                hot_lines: 256,
                rays: 24 * 1024,
                reads_per_ray: 20,
            },
            Scale::Paper => RaytraceParams {
                scene_lines: 64 * 1024, // 4 MB ("car")
                hot_lines: 512,
                rays: 64 * 1024,
                reads_per_ray: 28,
            },
        }
    }
}

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn description(&self) -> &'static str {
        "3-D scene rendering using ray-tracing"
    }

    fn paper_input(&self) -> &'static str {
        "car"
    }

    fn reduced_input(&self) -> &'static str {
        "car (reduced: 768 KB scene, 24K rays)"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        let params = RaytraceParams::for_scale(cfg.scale);
        let procs = cfg.topology.total_procs();

        let mut space = AddressSpace::new();
        let scene = space.alloc("scene", params.scene_lines, 64);
        let framebuffer = space.alloc("framebuffer", params.rays, 4);
        let queue = space.alloc("ray_queue", 16, 64);

        let mut b = TraceWriter::new(cfg.topology, sink).with_think_cycles(cfg.think_cycles);
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x4a11);

        // Processor 0 builds the scene database; its pages are homed on
        // node 0 and never written again.
        for line in 0..params.scene_lines {
            b.write(ProcId(0), scene.elem(line));
        }
        b.barrier_all();

        // Each processor traces an equal share of rays, dequeuing bundles of
        // rays from the shared work queue.
        let rays_per_bundle = 32u64;
        for p in 0..procs {
            let proc = ProcId(p as u16);
            let range = owned_range(params.rays as usize, cfg.topology, proc);
            for (count, ray) in range.clone().enumerate() {
                if (count as u64).is_multiple_of(rays_per_bundle) {
                    b.lock(proc, 0);
                    b.read(proc, queue.elem(0));
                    b.write(proc, queue.elem(0));
                    b.unlock(proc, 0);
                }
                // Walk the acceleration structure: the first few reads hit
                // the hot top levels, the rest sample the scene irregularly.
                for step in 0..params.reads_per_ray {
                    let line = if step < 6 {
                        rng.gen_range(0..params.hot_lines)
                    } else {
                        rng.gen_range(0..params.scene_lines)
                    };
                    b.read(proc, scene.elem(line));
                }
                // Write the pixel (private to this processor's band).
                b.write(proc, framebuffer.elem(ray as u64));
            }
        }
        b.barrier_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_and_overwhelmingly_read_only() {
        let cfg = WorkloadConfig::reduced();
        let trace = Raytrace.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        assert!(
            stats.write_fraction() < 0.2,
            "write fraction {}",
            stats.write_fraction()
        );
    }

    #[test]
    fn scene_pages_are_read_by_every_node() {
        let stats = Raytrace.generate(&WorkloadConfig::reduced()).stats();
        // The scene dominates the footprint and is shared.
        assert!(stats.node_shared_pages * 2 > stats.footprint_pages);
    }

    #[test]
    fn scene_written_only_during_setup() {
        let cfg = WorkloadConfig::reduced();
        let trace = Raytrace.generate(&cfg);
        // After the first barrier no processor writes scene pages (pages of
        // the first allocated segment).
        let params = RaytraceParams::for_scale(Scale::Reduced);
        let scene_pages = params.scene_lines * 64 / mem_trace::PAGE_SIZE;
        for events in &trace.per_proc {
            let mut past_barrier = false;
            for e in events {
                match e {
                    mem_trace::TraceEvent::Barrier(0) => past_barrier = true,
                    mem_trace::TraceEvent::Access(m) if past_barrier && m.kind.is_write() => {
                        assert!(
                            m.page().0 >= scene_pages,
                            "scene page {:?} written after setup",
                            m.page()
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}
