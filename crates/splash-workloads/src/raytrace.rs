//! `raytrace` — 3-D scene rendering by ray tracing (SPLASH-2 Raytrace, car
//! scene).
//!
//! The scene database (geometry plus the hierarchical uniform grid used to
//! accelerate intersection tests) is built once and then *read* by every
//! processor while tracing rays; rays are distributed through a work queue.
//! The upper levels of the acceleration structure are touched by every ray
//! and are therefore natural replication candidates, while the bulk of the
//! scene is sampled irregularly so the processor caches thrash — R-NUMA
//! relocates those pages in large numbers (1059 per node in Table 4), but,
//! as the paper notes, the remaining misses are largely off the critical
//! path because rays are independent and plentiful.

use crate::config::{Scale, WorkloadConfig};
use crate::util::{advance_proc_phase, owned_range};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, StepGenerator, StepWriter, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ray-traced rendering of a 3-D scene.
pub struct Raytrace;

struct RaytraceParams {
    /// Cache lines of scene data (geometry + grid).
    scene_lines: u64,
    /// Cache lines of "hot" acceleration-structure data (top grid levels).
    hot_lines: u64,
    /// Rays traced in total.
    rays: u64,
    /// Scene lines read per ray.
    reads_per_ray: u64,
}

impl RaytraceParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => RaytraceParams {
                scene_lines: 12 * 1024, // 768 KB of scene data
                hot_lines: 256,
                rays: 24 * 1024,
                reads_per_ray: 20,
            },
            Scale::Paper => RaytraceParams {
                scene_lines: 64 * 1024, // 4 MB ("car")
                hot_lines: 512,
                rays: 64 * 1024,
                reads_per_ray: 28,
            },
            // Scene and ray counts carry the factor; the hot top levels of
            // the acceleration structure stay the paper's size (clamped
            // into the scene at slivers), as a deeper grid would not grow
            // its root.
            Scale::Custom(c) => {
                let scene_lines = c.of(64 * 1024).max(1024);
                RaytraceParams {
                    scene_lines,
                    hot_lines: 512.min(scene_lines / 4).max(1),
                    rays: c.of(64 * 1024).max(1024),
                    reads_per_ray: 28,
                }
            }
        }
    }
}

/// Scene lines built per setup step (bounds each step's emission).
const SCENE_CHUNK: u64 = 4096;

enum RaytraceState {
    Scene { from: u64 },
    Trace { p: usize },
    Finish,
}

struct RaytraceGen {
    params: RaytraceParams,
    topology: Topology,
    procs: usize,
    scene: Segment,
    framebuffer: Segment,
    queue: Segment,
    w: StepWriter,
    rng: SmallRng,
    state: RaytraceState,
}

impl RaytraceGen {
    fn new(cfg: &WorkloadConfig) -> Self {
        let params = RaytraceParams::for_scale(cfg.scale);
        let mut space = AddressSpace::new();
        let scene = space.alloc("scene", params.scene_lines, 64);
        let framebuffer = space.alloc("framebuffer", params.rays, 4);
        let queue = space.alloc("ray_queue", 16, 64);
        RaytraceGen {
            params,
            topology: cfg.topology,
            procs: cfg.topology.total_procs(),
            scene,
            framebuffer,
            queue,
            w: StepWriter::new(cfg.topology).with_think_cycles(cfg.think_cycles),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x4a11),
            state: RaytraceState::Scene { from: 0 },
        }
    }
}

impl StepGenerator for RaytraceGen {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        match self.state {
            // Processor 0 builds the scene database; its pages are homed on
            // node 0 and never written again.
            RaytraceState::Scene { from } => {
                let to = (from + SCENE_CHUNK).min(self.params.scene_lines);
                for line in from..to {
                    let addr = self.scene.elem(line);
                    self.w.write(sink, ProcId(0), addr);
                }
                if to < self.params.scene_lines {
                    self.state = RaytraceState::Scene { from: to };
                } else {
                    self.w.barrier_all(sink);
                    self.state = RaytraceState::Trace { p: 0 };
                }
            }
            // Each processor traces an equal share of rays, dequeuing
            // bundles of rays from the shared work queue.
            RaytraceState::Trace { p } => {
                let rays_per_bundle = 32u64;
                let proc = ProcId(p as u16);
                let range = owned_range(self.params.rays as usize, self.topology, proc);
                for (count, ray) in range.enumerate() {
                    if (count as u64).is_multiple_of(rays_per_bundle) {
                        self.w.lock(sink, proc, 0);
                        let q0 = self.queue.elem(0);
                        self.w.read(sink, proc, q0);
                        self.w.write(sink, proc, q0);
                        self.w.unlock(sink, proc, 0);
                    }
                    // Walk the acceleration structure: the first few reads
                    // hit the hot top levels, the rest sample the scene
                    // irregularly.
                    for step in 0..self.params.reads_per_ray {
                        let line = if step < 6 {
                            self.rng.gen_range(0..self.params.hot_lines)
                        } else {
                            self.rng.gen_range(0..self.params.scene_lines)
                        };
                        let addr = self.scene.elem(line);
                        self.w.read(sink, proc, addr);
                    }
                    // Write the pixel (private to this processor's band).
                    let pixel = self.framebuffer.elem(ray as u64);
                    self.w.write(sink, proc, pixel);
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| RaytraceState::Trace { p },
                    || RaytraceState::Finish,
                );
            }
            RaytraceState::Finish => {
                self.w.finish(sink);
                return false;
            }
        }
        true
    }
}

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn description(&self) -> &'static str {
        "3-D scene rendering using ray-tracing"
    }

    fn paper_input(&self) -> &'static str {
        "car"
    }

    fn reduced_input(&self) -> &'static str {
        "car (reduced: 768 KB scene, 24K rays)"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        crate::run_stepper(self.stepper(cfg), sink);
    }

    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        Box::new(RaytraceGen::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_and_overwhelmingly_read_only() {
        let cfg = WorkloadConfig::reduced();
        let trace = Raytrace.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        assert!(
            stats.write_fraction() < 0.2,
            "write fraction {}",
            stats.write_fraction()
        );
    }

    #[test]
    fn scene_pages_are_read_by_every_node() {
        let stats = Raytrace.generate(&WorkloadConfig::reduced()).stats();
        // The scene dominates the footprint and is shared.
        assert!(stats.node_shared_pages * 2 > stats.footprint_pages);
    }

    #[test]
    fn scene_written_only_during_setup() {
        let cfg = WorkloadConfig::reduced();
        let trace = Raytrace.generate(&cfg);
        // After the first barrier no processor writes scene pages (pages of
        // the first allocated segment).
        let params = RaytraceParams::for_scale(Scale::Reduced);
        let scene_pages = params.scene_lines * 64 / mem_trace::PAGE_SIZE;
        for events in &trace.per_proc {
            let mut past_barrier = false;
            for e in events {
                match e {
                    mem_trace::TraceEvent::Barrier(0) => past_barrier = true,
                    mem_trace::TraceEvent::Access(m) if past_barrier && m.kind.is_write() => {
                        assert!(
                            m.page().0 >= scene_pages,
                            "scene page {:?} written after setup",
                            m.page()
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn custom_scale_grows_scene_and_rays() {
        use crate::config::CustomScale;
        let double = RaytraceParams::for_scale(Scale::Custom(CustomScale::new(2, 1)));
        assert_eq!(double.scene_lines, 128 * 1024);
        assert_eq!(double.rays, 128 * 1024);
        assert_eq!(double.hot_lines, 512, "grid root stays the paper's size");
        let sliver = RaytraceParams::for_scale(Scale::Custom(CustomScale::new(1, 32)));
        assert!(sliver.hot_lines <= sliver.scene_lines);
    }
}
