//! `barnes` — Barnes-Hut hierarchical N-body simulation (SPLASH-2 Barnes).
//!
//! Each timestep builds an octree over the bodies (small, write-shared,
//! lock-protected), computes forces by walking the tree — the upper tree
//! cells are read by *every* processor, making their pages replication
//! candidates — and finally updates each processor's own bodies.  Body
//! pages are read by several other processors during force computation
//! (high read-write sharing degree), which is why page migration alone
//! cannot remove their capacity misses and, as the paper observes, can even
//! hurt by migrating read-mostly pages back and forth.

use crate::config::{Scale, WorkloadConfig};
use crate::util::{advance_proc_phase, owned_range};
use crate::Workload;
use mem_trace::{AddressSpace, EventSink, ProcId, Segment, StepGenerator, StepWriter, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Barnes-Hut N-body simulation.
pub struct Barnes;

struct BarnesParams {
    bodies: u64,
    timesteps: u64,
    /// Tree cells (interior nodes of the octree), roughly bodies / 2.
    cells: u64,
    /// Cells visited per force evaluation.
    cells_per_walk: u64,
    /// Other bodies read per force evaluation.
    neighbors_per_body: u64,
}

impl BarnesParams {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Reduced => BarnesParams {
                bodies: 2048,
                timesteps: 6,
                cells: 1024,
                cells_per_walk: 12,
                neighbors_per_body: 6,
            },
            Scale::Paper => BarnesParams {
                bodies: 16 * 1024,
                timesteps: 4,
                cells: 8 * 1024,
                cells_per_walk: 16,
                neighbors_per_body: 8,
            },
            // Bodies (and the tree over them) carry the factor; walk depth
            // and timesteps are the paper's.
            Scale::Custom(c) => BarnesParams {
                bodies: c.of(16 * 1024).max(64),
                timesteps: 4,
                cells: c.of(8 * 1024).max(32),
                cells_per_walk: 16,
                neighbors_per_body: 8,
            },
        }
    }
}

enum BarnesState {
    Init { p: usize },
    Build { step: u64, p: usize },
    Force { step: u64, p: usize },
    Update { step: u64, p: usize },
    Finish,
}

struct BarnesGen {
    params: BarnesParams,
    topology: Topology,
    procs: usize,
    bodies: Segment,
    cells: Segment,
    w: StepWriter,
    rng: SmallRng,
    state: BarnesState,
}

impl BarnesGen {
    fn new(cfg: &WorkloadConfig) -> Self {
        let params = BarnesParams::for_scale(cfg.scale);
        let mut space = AddressSpace::new();
        // One body per cache line (positions, velocities, mass).
        let bodies = space.alloc("bodies", params.bodies, 64);
        // Tree cells are two cache lines (children pointers + multipole).
        let cells = space.alloc("cells", params.cells, 128);
        BarnesGen {
            params,
            topology: cfg.topology,
            procs: cfg.topology.total_procs(),
            bodies,
            cells,
            w: StepWriter::new(cfg.topology).with_think_cycles(cfg.think_cycles),
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xba53),
            state: BarnesState::Init { p: 0 },
        }
    }
}

impl StepGenerator for BarnesGen {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        let params = &self.params;
        match self.state {
            // Initialization: owners write their own bodies.
            BarnesState::Init { p } => {
                let proc = ProcId(p as u16);
                for i in owned_range(params.bodies as usize, self.topology, proc) {
                    self.w.write(sink, proc, self.bodies.elem(i as u64));
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| BarnesState::Init { p },
                    || BarnesState::Build { step: 0, p: 0 },
                );
            }
            // Phase 1: tree build.  Every processor inserts its bodies,
            // writing a root-to-leaf path of cells under a per-subtree lock.
            // The upper cells (small indices) are touched by everyone.
            BarnesState::Build { step, p } => {
                let proc = ProcId(p as u16);
                let range = owned_range(params.bodies as usize, self.topology, proc);
                for i in range.step_by(8) {
                    let lock_id = (i as u32 % 8) + 1;
                    self.w.lock(sink, proc, lock_id);
                    // Path from the root: geometrically distributed indices.
                    let mut idx = 0u64;
                    for depth in 0..4u64 {
                        self.w.read(sink, proc, self.cells.elem(idx));
                        self.w.write(sink, proc, self.cells.elem(idx));
                        let fanout = 1 + self.rng.gen_range(0..4u64);
                        idx = (idx * 4 + fanout + depth) % params.cells;
                    }
                    self.w.unlock(sink, proc, lock_id);
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| BarnesState::Build { step, p },
                    || BarnesState::Force { step, p: 0 },
                );
            }
            // Phase 2: force computation.  Each body's owner walks the upper
            // tree (read-shared cells) and reads a sample of other bodies,
            // then writes its own body's accelerations.
            BarnesState::Force { step, p } => {
                let proc = ProcId(p as u16);
                for i in owned_range(params.bodies as usize, self.topology, proc) {
                    for walk in 0..params.cells_per_walk {
                        // Walks are heavily biased towards the top of the
                        // tree, which is what makes those pages read-shared
                        // by all nodes.
                        let cell = if walk < 4 {
                            walk
                        } else {
                            self.rng.gen_range(0..params.cells)
                        };
                        self.w.read(sink, proc, self.cells.elem(cell));
                    }
                    for _ in 0..params.neighbors_per_body {
                        let other = self.rng.gen_range(0..params.bodies);
                        self.w.read(sink, proc, self.bodies.elem(other));
                    }
                    self.w.write(sink, proc, self.bodies.elem(i as u64));
                }
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| BarnesState::Force { step, p },
                    || BarnesState::Update { step, p: 0 },
                );
            }
            // Phase 3: position update — private to each owner.
            BarnesState::Update { step, p } => {
                let proc = ProcId(p as u16);
                for i in owned_range(params.bodies as usize, self.topology, proc) {
                    self.w.read(sink, proc, self.bodies.elem(i as u64));
                    self.w.write(sink, proc, self.bodies.elem(i as u64));
                }
                let timesteps = params.timesteps;
                self.state = advance_proc_phase(
                    &mut self.w,
                    sink,
                    p,
                    self.procs,
                    |p| BarnesState::Update { step, p },
                    || {
                        if step + 1 < timesteps {
                            BarnesState::Build {
                                step: step + 1,
                                p: 0,
                            }
                        } else {
                            BarnesState::Finish
                        }
                    },
                );
            }
            BarnesState::Finish => {
                self.w.finish(sink);
                return false;
            }
        }
        true
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn description(&self) -> &'static str {
        "Barnes-Hut N-body simulation"
    }

    fn paper_input(&self) -> &'static str {
        "16K particles"
    }

    fn reduced_input(&self) -> &'static str {
        "2K particles"
    }

    fn emit(&self, cfg: &WorkloadConfig, sink: &mut dyn EventSink) {
        crate::run_stepper(self.stepper(cfg), sink);
    }

    fn stepper(&self, cfg: &WorkloadConfig) -> Box<dyn StepGenerator> {
        Box::new(BarnesGen::new(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_valid_and_read_mostly() {
        let cfg = WorkloadConfig::reduced();
        let trace = Barnes.generate(&cfg);
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        assert!(stats.reads > 2 * stats.writes);
        assert!(stats.barriers > 3 * BarnesParams::for_scale(Scale::Reduced).timesteps);
    }

    #[test]
    fn tree_cells_are_shared_by_all_nodes() {
        let cfg = WorkloadConfig::reduced();
        let stats = Barnes.generate(&cfg).stats();
        // Bodies + cells are both shared: a large fraction of the footprint
        // is touched by more than one node.
        assert!(stats.node_shared_pages * 3 > stats.footprint_pages);
    }

    #[test]
    fn uses_locks_for_tree_construction() {
        let cfg = WorkloadConfig::reduced();
        let trace = Barnes.generate(&cfg);
        let has_locks = trace.per_proc.iter().any(|events| {
            events
                .iter()
                .any(|e| matches!(e, mem_trace::TraceEvent::Lock(_)))
        });
        assert!(has_locks);
    }

    #[test]
    fn custom_scale_grows_bodies_and_cells() {
        use crate::config::CustomScale;
        let double = BarnesParams::for_scale(Scale::Custom(CustomScale::new(2, 1)));
        assert_eq!(double.bodies, 32 * 1024);
        assert_eq!(double.cells, 16 * 1024);
        assert_eq!(double.timesteps, 4, "timesteps are the paper's");
    }
}
