//! Global addresses, cache blocks, pages, and cluster topology.
//!
//! The paper's cluster (its Figure 1) is a network of eight 4-way SMP nodes.
//! Shared data lives in a single *global* physical address space; every page
//! has a *home node*.  Coherence is maintained at cache-block granularity
//! (64-byte blocks) while the page-level mechanisms — first-touch placement,
//! migration, replication, and R-NUMA relocation — operate on 4-KByte pages.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cache block (coherence unit) size in bytes — the *paper's* geometry.
/// Machinery that supports page/block-size sweeps takes a [`Geometry`]
/// instead of reading this constant.
pub const BLOCK_SIZE: u64 = 64;
/// Virtual-memory page size in bytes (the paper's geometry; see
/// [`Geometry`]).
pub const PAGE_SIZE: u64 = 4096;
/// Number of cache blocks per page at the paper's geometry.
pub const BLOCKS_PER_PAGE: u64 = PAGE_SIZE / BLOCK_SIZE;

/// Address-space geometry: the page and cache-block sizes a machine is
/// simulated with.
///
/// Traces are streams of *byte* addresses, so geometry is purely a property
/// of the machine interpreting them: the same deterministic trace can be
/// swept across page and block sizes.  The inherent
/// [`GlobalAddr::page`]/[`GlobalAddr::block`] decompositions assume the
/// paper's 4-KB/64-B geometry; sweep-capable layers decompose through a
/// `Geometry` carried by their machine configuration instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Virtual-memory page size in bytes (power of two).
    pub page_bytes: u64,
    /// Cache block (coherence unit) size in bytes (power of two, divides
    /// `page_bytes`).
    pub block_bytes: u64,
}

impl Geometry {
    /// The paper's geometry: 4-KByte pages, 64-byte blocks.
    pub const PAPER: Geometry = Geometry {
        page_bytes: PAGE_SIZE,
        block_bytes: BLOCK_SIZE,
    };

    /// Construct a geometry.
    ///
    /// # Panics
    /// Panics unless both sizes are powers of two with
    /// `block_bytes <= page_bytes`.
    pub fn new(page_bytes: u64, block_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two() && block_bytes.is_power_of_two(),
            "page and block sizes must be powers of two"
        );
        assert!(
            block_bytes <= page_bytes,
            "block size must not exceed the page size"
        );
        Geometry {
            page_bytes,
            block_bytes,
        }
    }

    /// Number of cache blocks per page.
    #[inline]
    pub fn blocks_per_page(self) -> u64 {
        self.page_bytes / self.block_bytes
    }

    /// The page containing `addr`.
    #[inline]
    pub fn page_of(self, addr: GlobalAddr) -> PageId {
        PageId(addr.0 / self.page_bytes)
    }

    /// The block containing `addr`.
    #[inline]
    pub fn block_of(self, addr: GlobalAddr) -> BlockId {
        BlockId(addr.0 / self.block_bytes)
    }

    /// The page containing `block`.
    #[inline]
    pub fn page_of_block(self, block: BlockId) -> PageId {
        PageId(block.0 / self.blocks_per_page())
    }

    /// Index of `block` within its page (`0 .. blocks_per_page`).
    #[inline]
    pub fn index_in_page(self, block: BlockId) -> u64 {
        block.0 % self.blocks_per_page()
    }

    /// The first block of `page`.
    #[inline]
    pub fn first_block(self, page: PageId) -> BlockId {
        BlockId(page.0 * self.blocks_per_page())
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::PAPER
    }
}

/// A byte address in the global shared physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalAddr(pub u64);

/// A cache-block-aligned address (address / `BLOCK_SIZE`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

/// A page-aligned address (address / `PAGE_SIZE`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

/// A cluster node (SMP workstation) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// A global processor identifier (`0 .. nodes * procs_per_node`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u16);

impl GlobalAddr {
    /// The block containing this address.
    #[inline]
    pub fn block(self) -> BlockId {
        BlockId(self.0 / BLOCK_SIZE)
    }

    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE)
    }

    /// Byte offset within its page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Byte offset within its block.
    #[inline]
    pub fn block_offset(self) -> u64 {
        self.0 % BLOCK_SIZE
    }
}

impl BlockId {
    /// The page containing this block.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / BLOCKS_PER_PAGE)
    }

    /// Index of this block within its page (`0 .. BLOCKS_PER_PAGE`).
    #[inline]
    pub fn index_in_page(self) -> u64 {
        self.0 % BLOCKS_PER_PAGE
    }

    /// First byte address of this block.
    #[inline]
    pub fn base_addr(self) -> GlobalAddr {
        GlobalAddr(self.0 * BLOCK_SIZE)
    }
}

impl PageId {
    /// First byte address of this page.
    #[inline]
    pub fn base_addr(self) -> GlobalAddr {
        GlobalAddr(self.0 * PAGE_SIZE)
    }

    /// First block of this page.
    #[inline]
    pub fn first_block(self) -> BlockId {
        BlockId(self.0 * BLOCKS_PER_PAGE)
    }

    /// Iterate over every block of this page.
    pub fn blocks(self) -> impl Iterator<Item = BlockId> {
        let first = self.0 * BLOCKS_PER_PAGE;
        (first..first + BLOCKS_PER_PAGE).map(BlockId)
    }

    /// `true` if `block` belongs to this page.
    #[inline]
    pub fn contains(self, block: BlockId) -> bool {
        block.page() == self
    }
}

impl NodeId {
    /// Numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ProcId {
    /// Numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cluster topology: how many SMP nodes, and how many processors per node.
///
/// The paper's baseline is 8 nodes x 4 processors (32 processors total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Number of SMP nodes in the cluster.
    pub nodes: u16,
    /// Number of processors per SMP node.
    pub procs_per_node: u16,
}

impl Topology {
    /// The paper's baseline cluster: 8 nodes of 4 processors.
    pub const PAPER: Topology = Topology {
        nodes: 8,
        procs_per_node: 4,
    };

    /// Construct a topology.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nodes: u16, procs_per_node: u16) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(procs_per_node > 0, "node needs at least one processor");
        Topology {
            nodes,
            procs_per_node,
        }
    }

    /// Total number of processors in the cluster.
    #[inline]
    pub fn total_procs(&self) -> usize {
        self.nodes as usize * self.procs_per_node as usize
    }

    /// The node a processor belongs to.
    #[inline]
    pub fn node_of(&self, proc: ProcId) -> NodeId {
        NodeId(proc.0 / self.procs_per_node)
    }

    /// The processors belonging to `node`, in order.
    pub fn procs_of(&self, node: NodeId) -> impl Iterator<Item = ProcId> {
        let first = node.0 * self.procs_per_node;
        (first..first + self.procs_per_node).map(ProcId)
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Iterate over all processor ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.nodes * self.procs_per_node).map(ProcId)
    }

    /// `true` if two processors reside on the same node.
    #[inline]
    pub fn same_node(&self, a: ProcId, b: ProcId) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

impl fmt::Debug for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}
impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}
impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}
impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_decomposition() {
        let a = GlobalAddr(PAGE_SIZE * 3 + BLOCK_SIZE * 5 + 7);
        assert_eq!(a.page(), PageId(3));
        assert_eq!(a.block(), BlockId(3 * BLOCKS_PER_PAGE + 5));
        assert_eq!(a.page_offset(), BLOCK_SIZE * 5 + 7);
        assert_eq!(a.block_offset(), 7);
    }

    #[test]
    fn block_page_relationship() {
        let p = PageId(9);
        let blocks: Vec<BlockId> = p.blocks().collect();
        assert_eq!(blocks.len(), BLOCKS_PER_PAGE as usize);
        assert_eq!(blocks[0], p.first_block());
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.page(), p);
            assert_eq!(b.index_in_page(), i as u64);
            assert!(p.contains(*b));
        }
        assert!(!p.contains(BlockId((p.0 + 1) * BLOCKS_PER_PAGE)));
    }

    #[test]
    fn block_base_addr_round_trips() {
        let b = BlockId(1234);
        assert_eq!(b.base_addr().block(), b);
        let p = PageId(77);
        assert_eq!(p.base_addr().page(), p);
    }

    #[test]
    fn paper_topology() {
        let t = Topology::PAPER;
        assert_eq!(t.total_procs(), 32);
        assert_eq!(t.node_of(ProcId(0)), NodeId(0));
        assert_eq!(t.node_of(ProcId(3)), NodeId(0));
        assert_eq!(t.node_of(ProcId(4)), NodeId(1));
        assert_eq!(t.node_of(ProcId(31)), NodeId(7));
        assert!(t.same_node(ProcId(8), ProcId(11)));
        assert!(!t.same_node(ProcId(7), ProcId(8)));
    }

    #[test]
    fn procs_of_node_enumerates_contiguously() {
        let t = Topology::new(4, 2);
        let procs: Vec<ProcId> = t.procs_of(NodeId(2)).collect();
        assert_eq!(procs, vec![ProcId(4), ProcId(5)]);
        assert_eq!(t.proc_ids().count(), 8);
        assert_eq!(t.node_ids().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Topology::new(0, 4);
    }

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(BLOCKS_PER_PAGE * BLOCK_SIZE, PAGE_SIZE);
        assert!(BLOCK_SIZE.is_power_of_two());
        assert!(PAGE_SIZE.is_power_of_two());
    }
}
