//! Shared-memory address-space model and reference traces.
//!
//! The reproduced paper drives its simulated DSM cluster with the memory
//! references of SPLASH-2 applications.  In this reproduction the workloads
//! (crate `splash-workloads`) are re-implemented as *trace generators*: each
//! produces, for every simulated processor, a sequence of [`TraceEvent`]s —
//! shared-memory reads and writes, interleaved compute delays, and
//! barrier/lock synchronization — over a single global address space.
//!
//! This crate defines:
//!
//! * the address vocabulary ([`GlobalAddr`], [`BlockId`], [`PageId`]) and the
//!   cluster topology ([`Topology`], [`NodeId`], [`ProcId`]),
//! * the dense-index vocabulary ([`intern::PageInterner`],
//!   [`intern::PageIdx`], [`intern::BlockIdx`]) that flattens sparse page and
//!   block ids into contiguous array indices for the simulator's hot path,
//! * the trace representation ([`TraceEvent`], [`ProgramTrace`]) and its
//!   validation / summary statistics,
//! * the pull-based [`source::TraceSource`] abstraction the simulator
//!   drives, with materialized ([`source::TraceCursor`]), fused
//!   ([`source::FusedSource`], running a resumable [`source::StepGenerator`]
//!   inside the consumer's pull loop), threaded ([`source::ThreadedSource`])
//!   and file-replayed ([`replay::ReplaySource`]) implementations,
//! * a seekless binary record/replay format ([`replay`]),
//! * a shared-segment allocator ([`layout::AddressSpace`]) and a per-processor
//!   [`builder::TraceBuilder`] / [`builder::TraceWriter`] that workloads use
//!   to emit well-formed traces into any [`builder::EventSink`].

pub mod access;
pub mod addr;
pub mod builder;
pub mod intern;
pub mod layout;
pub mod replay;
pub mod shard;
pub mod sharded;
pub mod sharers;
pub mod source;
pub mod trace;

pub use access::{AccessKind, MemRef, TraceEvent};
pub use addr::{
    BlockId, Geometry, GlobalAddr, NodeId, PageId, ProcId, Topology, BLOCKS_PER_PAGE, BLOCK_SIZE,
    PAGE_SIZE,
};
pub use builder::{EventSink, StepWriter, TraceBuilder, TraceWriter};
pub use intern::{BlockIdx, BlockRef, PageIdx, PageInterner, PageRef, Slab};
pub use layout::{AddressSpace, Segment};
pub use replay::{record, record_to_file, ReplaySource};
pub use shard::ShardMap;
pub use sharded::{PumpScript, ShardedSource};
pub use sharers::SharerSet;
pub use source::{
    default_window_cap, FusedSource, StepGenerator, ThreadedSource, TraceCursor, TraceSource,
    DEFAULT_WINDOW_CAP, WINDOW_CAP_PER_PROC,
};
pub use trace::{ProgramTrace, StatsAccumulator, TraceError, TraceStats, MAX_LOCK_ID};
