//! Pull-based trace streams: the [`TraceSource`] abstraction.
//!
//! The simulator is trace-driven, but nothing about it requires the whole
//! trace to exist in memory: it only ever asks "what is processor `p`'s next
//! event?".  `TraceSource` captures exactly that contract — per-processor
//! pull cursors over a workload's event streams — so that the three ways a
//! trace can exist are interchangeable:
//!
//! * **materialized** — [`TraceCursor`], a cursor over a [`ProgramTrace`]
//!   (the classic in-memory representation, still used by tests and
//!   custom-trace callers);
//! * **streamed** — [`ThreadedSource`], which runs a generator on its own
//!   thread and hands events to the consumer through a small bounded
//!   channel, so peak memory is bounded by the channel plus the skew between
//!   the generator's emission order and the simulator's consumption order
//!   instead of by the whole trace;
//! * **replayed** — [`crate::replay::ReplaySource`], which demultiplexes a
//!   recorded trace file without seeking.
//!
//! Every source also accumulates incremental [`TraceStats`] over the events
//! pulled so far ([`TraceSource::stats_so_far`]); once a source is drained
//! these equal what [`ProgramTrace::stats`] would report for the same trace.

use std::collections::VecDeque;
use std::sync::mpsc;

use crate::access::TraceEvent;
use crate::addr::{ProcId, Topology};
use crate::builder::EventSink;
use crate::trace::{ProgramTrace, StatsAccumulator, TraceStats};

/// A per-processor pull cursor over a workload's event streams.
///
/// The contract:
///
/// * [`next_event`](TraceSource::next_event) consumes and returns the next
///   event of one processor's stream, `None` once that stream is exhausted;
/// * [`exhausted`](TraceSource::exhausted) answers the same question without
///   consuming (it may buffer internally, which is why it takes `&mut`);
/// * streams of different processors are independent: consuming from one
///   never skips events of another;
/// * the per-processor sequences are deterministic for a given source
///   construction, so two drains of equally constructed sources observe
///   bit-identical streams.
pub trait TraceSource {
    /// Workload name (Table 2 row, e.g. `"lu"`).
    fn name(&self) -> &str;

    /// Cluster topology the trace targets.
    fn topology(&self) -> Topology;

    /// Pull the next event of `proc`'s stream; `None` once exhausted.
    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent>;

    /// `true` once `proc`'s stream has no further events.  Does not consume.
    fn exhausted(&mut self, proc: ProcId) -> bool;

    /// Statistics over the events pulled (or internally buffered) so far.
    /// After every stream is drained this equals the whole-trace statistics.
    fn stats_so_far(&self) -> TraceStats;
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn topology(&self) -> Topology {
        (**self).topology()
    }
    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        (**self).next_event(proc)
    }
    fn exhausted(&mut self, proc: ProcId) -> bool {
        (**self).exhausted(proc)
    }
    fn stats_so_far(&self) -> TraceStats {
        (**self).stats_so_far()
    }
}

/// The materialized [`TraceSource`]: per-processor cursors over a
/// [`ProgramTrace`] held in memory.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a ProgramTrace,
    pos: Vec<usize>,
}

impl<'a> TraceCursor<'a> {
    /// Fresh cursors at the start of every processor's stream.
    pub fn new(trace: &'a ProgramTrace) -> Self {
        TraceCursor {
            trace,
            pos: vec![0; trace.per_proc.len()],
        }
    }
}

impl ProgramTrace {
    /// View this trace as a [`TraceSource`] (fresh cursors at the start).
    pub fn source(&self) -> TraceCursor<'_> {
        TraceCursor::new(self)
    }
}

impl TraceSource for TraceCursor<'_> {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn topology(&self) -> Topology {
        self.trace.topology
    }

    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        let p = proc.index();
        let ev = *self.trace.per_proc[p].get(self.pos[p])?;
        self.pos[p] += 1;
        Some(ev)
    }

    fn exhausted(&mut self, proc: ProcId) -> bool {
        let p = proc.index();
        self.pos[p] >= self.trace.per_proc[p].len()
    }

    /// Computed lazily from the consumed prefixes: the trace is all in
    /// memory anyway, so the hot per-event path stays a bare index
    /// increment and only callers that actually want statistics pay for
    /// them.
    fn stats_so_far(&self) -> TraceStats {
        let mut acc = StatsAccumulator::new(self.trace.topology);
        for (p, events) in self.trace.per_proc.iter().enumerate() {
            for ev in &events[..self.pos[p]] {
                acc.observe(ProcId(p as u16), ev);
            }
        }
        acc.snapshot()
    }
}

/// Shared demultiplexing state for sources that read one interleaved event
/// stream (channel batches, trace-file records) and serve per-processor pull
/// cursors: small per-processor queues, per-processor end-of-stream flags,
/// and the incremental statistics every buffered event flows through.
///
/// Both [`ThreadedSource`] and [`crate::replay::ReplaySource`] drive their
/// `next_event`/`exhausted` loops off this one struct, so the demux
/// semantics cannot drift between them.
#[derive(Debug)]
pub(crate) struct Demux {
    buffers: Vec<VecDeque<TraceEvent>>,
    ended: Vec<bool>,
    stats: StatsAccumulator,
}

impl Demux {
    pub(crate) fn new(topology: Topology) -> Self {
        Demux {
            buffers: vec![VecDeque::new(); topology.total_procs()],
            ended: vec![false; topology.total_procs()],
            stats: StatsAccumulator::new(topology),
        }
    }

    /// Park one demultiplexed event for `proc`.
    pub(crate) fn push(&mut self, proc: ProcId, ev: TraceEvent) {
        self.stats.observe(proc, &ev);
        self.buffers[proc.index()].push_back(ev);
    }

    /// Record that `proc`'s stream has no further events (an explicit
    /// end-of-stream marker, or overall end of the underlying stream).
    pub(crate) fn end(&mut self, proc: ProcId) {
        self.ended[proc.index()] = true;
    }

    /// Mark every processor ended (overall end of the underlying stream).
    pub(crate) fn end_all(&mut self) {
        self.ended.fill(true);
    }

    pub(crate) fn pop(&mut self, proc: ProcId) -> Option<TraceEvent> {
        self.buffers[proc.index()].pop_front()
    }

    pub(crate) fn has_buffered(&self, proc: ProcId) -> bool {
        !self.buffers[proc.index()].is_empty()
    }

    pub(crate) fn is_ended(&self, proc: ProcId) -> bool {
        self.ended[proc.index()]
    }

    pub(crate) fn stats(&self) -> TraceStats {
        self.stats.snapshot()
    }
}

/// Events per channel batch: big enough to amortize channel synchronization,
/// small enough that a batch is a rounding error next to any real trace.
const BATCH_EVENTS: usize = 1024;
/// Batches the channel buffers before the producer blocks.  Bounded memory:
/// the producer can run at most `BATCH_BUFFER * BATCH_EVENTS` events ahead
/// of the consumer (plus whatever the consumer demultiplexes while waiting
/// for a specific processor's next event).
const BATCH_BUFFER: usize = 32;

/// The producer half of [`ThreadedSource`]: an [`EventSink`] that ships
/// events to the consumer in bounded batches.
struct ChannelSink {
    tx: mpsc::SyncSender<Vec<(u16, TraceEvent)>>,
    buf: Vec<(u16, TraceEvent)>,
    /// Set once the consumer hung up; subsequent events are discarded so the
    /// generator can run to completion (cheap) instead of unwinding.
    dead: bool,
}

impl ChannelSink {
    fn new(tx: mpsc::SyncSender<Vec<(u16, TraceEvent)>>) -> Self {
        ChannelSink {
            tx,
            buf: Vec::with_capacity(BATCH_EVENTS),
            dead: false,
        }
    }

    fn flush(&mut self) {
        if self.dead || self.buf.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(BATCH_EVENTS));
        if self.tx.send(batch).is_err() {
            self.dead = true;
        }
    }
}

impl EventSink for ChannelSink {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        if self.dead {
            return;
        }
        self.buf.push((proc.0, ev));
        if self.buf.len() >= BATCH_EVENTS {
            self.flush();
        }
    }
}

/// A [`TraceSource`] produced by a generator running on its own thread.
///
/// The generator emits events in program order into a bounded channel; the
/// consumer demultiplexes them into small per-processor queues as the
/// simulator pulls.  Peak memory is the channel bound plus the skew between
/// emission order and consumption order (for the phase-structured SPLASH-2
/// generators: a fraction of one phase), *not* the trace size.
///
/// One caveat follows from the generator having no per-processor completion
/// signal: a processor's exhaustion only becomes observable at the end of
/// the whole stream, so `exhausted`/`next_event` on a processor that went
/// quiet long before generation ends will read (and buffer) the intervening
/// events.  The SPLASH generators end every processor together at a final
/// barrier, keeping that window one phase wide; recorded trace files avoid
/// it entirely via explicit per-processor end markers
/// ([`crate::replay`]).
pub struct ThreadedSource {
    name: String,
    topology: Topology,
    rx: Option<mpsc::Receiver<Vec<(u16, TraceEvent)>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    demux: Demux,
}

impl std::fmt::Debug for ThreadedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedSource")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl ThreadedSource {
    /// Run `generate` on a fresh thread and stream whatever it emits.
    ///
    /// `generate` receives an [`EventSink`] and must emit a well-formed
    /// trace for `topology` (same contract as emitting into a
    /// [`crate::TraceBuilder`]).  Dropping the source early is safe: the
    /// sink discards everything emitted after the hang-up and the thread
    /// exits once `generate` returns (generation is the cheap half of the
    /// pipeline — the remainder costs background CPU, never memory).
    pub fn spawn<F>(name: impl Into<String>, topology: Topology, generate: F) -> Self
    where
        F: FnOnce(&mut dyn EventSink) + Send + 'static,
    {
        let (tx, rx) = mpsc::sync_channel(BATCH_BUFFER);
        let handle = std::thread::Builder::new()
            .name("trace-generator".into())
            .spawn(move || {
                let mut sink = ChannelSink::new(tx);
                generate(&mut sink);
                sink.flush();
            })
            .expect("spawn trace-generator thread");
        ThreadedSource {
            name: name.into(),
            topology,
            rx: Some(rx),
            handle: Some(handle),
            demux: Demux::new(topology),
        }
    }

    /// Receive one batch and demultiplex it.  Returns `false` at end of
    /// stream.  Propagates a generator panic to the consumer.
    fn pump(&mut self) -> bool {
        let Some(rx) = &self.rx else { return false };
        match rx.recv() {
            Ok(batch) => {
                for (p, ev) in batch {
                    self.demux.push(ProcId(p), ev);
                }
                true
            }
            Err(_) => {
                self.rx = None;
                self.demux.end_all();
                if let Some(handle) = self.handle.take() {
                    if let Err(panic) = handle.join() {
                        std::panic::resume_unwind(panic);
                    }
                }
                false
            }
        }
    }
}

impl TraceSource for ThreadedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        loop {
            if let Some(ev) = self.demux.pop(proc) {
                return Some(ev);
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return None;
            }
        }
    }

    fn exhausted(&mut self, proc: ProcId) -> bool {
        loop {
            if self.demux.has_buffered(proc) {
                return false;
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return true;
            }
        }
    }

    fn stats_so_far(&self) -> TraceStats {
        self.demux.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;
    use crate::builder::{TraceBuilder, TraceWriter};

    fn toy_trace() -> ProgramTrace {
        let topo = Topology::new(2, 1);
        let mut b = TraceBuilder::new("toy", topo).with_think_cycles(2);
        b.read(ProcId(0), GlobalAddr(0));
        b.barrier_all();
        b.write(ProcId(1), GlobalAddr(4096));
        b.lock(ProcId(1), 7);
        b.unlock(ProcId(1), 7);
        b.build()
    }

    #[test]
    fn cursor_replays_the_trace_per_proc() {
        let trace = toy_trace();
        let mut src = trace.source();
        assert_eq!(src.name(), "toy");
        assert_eq!(src.topology(), trace.topology);
        for p in trace.topology.proc_ids() {
            let mut got = Vec::new();
            while let Some(ev) = src.next_event(p) {
                got.push(ev);
            }
            assert_eq!(got, trace.per_proc[p.index()]);
            assert!(src.exhausted(p));
        }
        assert_eq!(src.stats_so_far(), trace.stats());
    }

    #[test]
    fn cursor_streams_are_independent() {
        let trace = toy_trace();
        let mut src = trace.source();
        // Draining proc 1 first must not disturb proc 0's stream.
        while src.next_event(ProcId(1)).is_some() {}
        assert!(!src.exhausted(ProcId(0)));
        assert_eq!(src.next_event(ProcId(0)), Some(trace.per_proc[0][0]));
    }

    #[test]
    fn threaded_source_matches_materialized_trace() {
        let trace = toy_trace();
        let topo = trace.topology;
        let mut src = ThreadedSource::spawn("toy", topo, move |sink| {
            let mut w = TraceWriter::new(topo, sink).with_think_cycles(2);
            w.read(ProcId(0), GlobalAddr(0));
            w.barrier_all();
            w.write(ProcId(1), GlobalAddr(4096));
            w.lock(ProcId(1), 7);
            w.unlock(ProcId(1), 7);
        });
        // Pull in an adversarial order: proc 1 fully first.
        let mut p1 = Vec::new();
        while let Some(ev) = src.next_event(ProcId(1)) {
            p1.push(ev);
        }
        let mut p0 = Vec::new();
        while let Some(ev) = src.next_event(ProcId(0)) {
            p0.push(ev);
        }
        assert_eq!(p0, trace.per_proc[0]);
        assert_eq!(p1, trace.per_proc[1]);
        assert!(src.exhausted(ProcId(0)) && src.exhausted(ProcId(1)));
        assert_eq!(src.stats_so_far(), trace.stats());
    }

    #[test]
    fn threaded_source_survives_early_drop() {
        let topo = Topology::new(1, 1);
        let mut src = ThreadedSource::spawn("big", topo, move |sink| {
            let mut w = TraceWriter::new(topo, sink);
            for i in 0..1_000_000u64 {
                w.read(ProcId(0), GlobalAddr(i * 64));
            }
        });
        // Consume a handful of events, then drop: the generator thread must
        // wind down on its own without blocking anything.
        for _ in 0..10 {
            assert!(src.next_event(ProcId(0)).is_some());
        }
        drop(src);
    }

    #[test]
    #[should_panic(expected = "generator exploded")]
    fn generator_panic_propagates_to_the_consumer() {
        let topo = Topology::new(1, 1);
        let mut src = ThreadedSource::spawn("bad", topo, move |sink| {
            let mut w = TraceWriter::new(topo, sink);
            w.read(ProcId(0), GlobalAddr(0));
            panic!("generator exploded");
        });
        while src.next_event(ProcId(0)).is_some() {}
    }
}
