//! Pull-based trace streams: the [`TraceSource`] abstraction.
//!
//! The simulator is trace-driven, but nothing about it requires the whole
//! trace to exist in memory: it only ever asks "what is processor `p`'s next
//! event?".  `TraceSource` captures exactly that contract — per-processor
//! pull cursors over a workload's event streams — so that the four ways a
//! trace can exist are interchangeable:
//!
//! * **materialized** — [`TraceCursor`], a cursor over a [`ProgramTrace`]
//!   (the classic in-memory representation, still used by tests and
//!   custom-trace callers);
//! * **fused** — [`FusedSource`], which runs a resumable step-function
//!   generator ([`StepGenerator`]) directly inside the consumer's pull
//!   loop: no thread, no channel, no batch copies.  This is the default
//!   when producer and consumer share a core (the common experiment case
//!   where every worker thread runs one simulation);
//! * **streamed** — [`ThreadedSource`], which runs a generator on its own
//!   thread and hands events to the consumer through a small bounded
//!   channel, overlapping generation with simulation when a spare core is
//!   available;
//! * **replayed** — [`crate::replay::ReplaySource`], which demultiplexes a
//!   recorded trace file without seeking.
//!
//! Every source also accumulates incremental [`TraceStats`] over the events
//! *pulled* so far ([`TraceSource::stats_so_far`]); once a source is drained
//! these equal what [`ProgramTrace::stats`] would report for the same trace.
//!
//! # The exhaustion window, and why it is bounded
//!
//! A demultiplexing source (fused, threaded, replayed) learns that a
//! processor's stream ended either from an explicit per-processor
//! end-of-stream marker ([`crate::builder::EventSink::end_of_stream`],
//! which the workload generators emit for every processor at their final
//! barrier) or from the end of the whole underlying stream.  Between a
//! processor going quiet and its end marker arriving, `exhausted`/
//! `next_event` queries for it must read (and park) other processors'
//! events.  Two mechanisms keep that window from silently reintroducing
//! O(trace) memory: the end markers bound it to nothing for well-formed
//! generators, and a hard cap ([`DEFAULT_WINDOW_CAP`], adjustable per
//! source with `with_window_cap`) turns a genuinely unbounded window — an
//! adversarial pull order against a stream whose processors do not end
//! together — into [`TraceError::StreamWindowExceeded`], reported through
//! [`TraceSource::take_error`], instead of unbounded queue growth.

use std::collections::VecDeque;
use std::sync::mpsc;

use crate::access::TraceEvent;
use crate::addr::{ProcId, Topology};
use crate::builder::EventSink;
use crate::trace::{ProgramTrace, StatsAccumulator, TraceError, TraceStats};

/// A per-processor pull cursor over a workload's event streams.
///
/// The contract:
///
/// * [`next_event`](TraceSource::next_event) consumes and returns the next
///   event of one processor's stream, `None` once that stream is exhausted;
/// * [`exhausted`](TraceSource::exhausted) answers the same question without
///   consuming (it may buffer internally, which is why it takes `&mut`);
/// * streams of different processors are independent: consuming from one
///   never skips events of another;
/// * the per-processor sequences are deterministic for a given source
///   construction, so two drains of equally constructed sources observe
///   bit-identical streams;
/// * a source that had to give up mid-stream (buffering cap exceeded)
///   reports exhaustion everywhere and surfaces the reason through
///   [`take_error`](TraceSource::take_error).
pub trait TraceSource {
    /// Workload name (Table 2 row, e.g. `"lu"`).
    fn name(&self) -> &str;

    /// Cluster topology the trace targets.
    fn topology(&self) -> Topology;

    /// Pull the next event of `proc`'s stream; `None` once exhausted.
    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent>;

    /// `true` once `proc`'s stream has no further events.  Does not consume.
    fn exhausted(&mut self, proc: ProcId) -> bool;

    /// Pull up to `max` consecutive events of `proc`'s stream, appending
    /// them to `out` (which is not cleared).  Returns the number appended —
    /// `0` exactly when [`next_event`](TraceSource::next_event) would have
    /// returned `None`.
    ///
    /// Semantically identical to calling `next_event` up to `max` times and
    /// stopping at the first `None`, and implementations must preserve
    /// that equivalence *including side effects*: a demultiplexing source
    /// may only pump its underlying stream as far as producing the first
    /// event requires (exactly what one `next_event` call would pump) and
    /// then take events that are already parked, so that window-cap
    /// poisoning triggers at the same stream position under either API.
    /// Returning fewer than `max` events while more are cheaply available
    /// is allowed; returning `0` while the stream has events is not.
    ///
    /// The default body loops `next_event`, which monomorphizes to the
    /// concrete source — a caller holding `&mut dyn TraceSource` pays one
    /// virtual call per burst instead of one per event.
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            let Some(ev) = self.next_event(proc) else {
                break;
            };
            out.push(ev);
            n += 1;
        }
        n
    }

    /// Statistics over the events pulled so far.  After every stream is
    /// drained this equals the whole-trace statistics.
    fn stats_so_far(&self) -> TraceStats;

    /// Events read from the underlying stream but not yet pulled by the
    /// consumer (the demultiplexing window).  0 for sources that never
    /// park events.
    fn buffered_events(&self) -> usize {
        0
    }

    /// The error that cut this stream short, if any (taking it resets the
    /// slot).  A poisoned source answers `next_event`/`exhausted` as if
    /// every stream ended; consumers that care — the simulator — check this
    /// before trusting the early end.
    fn take_error(&mut self) -> Option<TraceError> {
        None
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn topology(&self) -> Topology {
        (**self).topology()
    }
    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        (**self).next_event(proc)
    }
    fn exhausted(&mut self, proc: ProcId) -> bool {
        (**self).exhausted(proc)
    }
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        (**self).next_burst(proc, out, max)
    }
    fn stats_so_far(&self) -> TraceStats {
        (**self).stats_so_far()
    }
    fn buffered_events(&self) -> usize {
        (**self).buffered_events()
    }
    fn take_error(&mut self) -> Option<TraceError> {
        (**self).take_error()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn topology(&self) -> Topology {
        (**self).topology()
    }
    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        (**self).next_event(proc)
    }
    fn exhausted(&mut self, proc: ProcId) -> bool {
        (**self).exhausted(proc)
    }
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        (**self).next_burst(proc, out, max)
    }
    fn stats_so_far(&self) -> TraceStats {
        (**self).stats_so_far()
    }
    fn buffered_events(&self) -> usize {
        (**self).buffered_events()
    }
    fn take_error(&mut self) -> Option<TraceError> {
        (**self).take_error()
    }
}

/// The materialized [`TraceSource`]: per-processor cursors over a
/// [`ProgramTrace`] held in memory.
///
/// Statistics are *caught up lazily*: the hot per-event path stays a bare
/// index increment, and each [`TraceSource::stats_so_far`] call feeds the
/// accumulator only the events pulled since the previous call.  A caller
/// polling stats in a loop therefore pays O(events) total — not
/// O(events²) as the old recount-the-prefix implementation did — while a
/// caller that never asks pays nothing per event.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a ProgramTrace,
    pos: Vec<usize>,
    /// Interior mutability: catching up is observationally pure, and
    /// `stats_so_far` takes `&self` across every source implementation.
    stats: std::cell::RefCell<LazyCursorStats>,
}

/// The accumulator plus the per-processor positions it has observed up to.
#[derive(Debug, Clone)]
struct LazyCursorStats {
    acc: StatsAccumulator,
    seen: Vec<usize>,
}

impl<'a> TraceCursor<'a> {
    /// Fresh cursors at the start of every processor's stream.
    pub fn new(trace: &'a ProgramTrace) -> Self {
        TraceCursor {
            trace,
            pos: vec![0; trace.per_proc.len()],
            stats: std::cell::RefCell::new(LazyCursorStats {
                acc: StatsAccumulator::new(trace.topology),
                seen: vec![0; trace.per_proc.len()],
            }),
        }
    }
}

impl ProgramTrace {
    /// View this trace as a [`TraceSource`] (fresh cursors at the start).
    pub fn source(&self) -> TraceCursor<'_> {
        TraceCursor::new(self)
    }
}

impl TraceSource for TraceCursor<'_> {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn topology(&self) -> Topology {
        self.trace.topology
    }

    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        let p = proc.index();
        let ev = *self.trace.per_proc[p].get(self.pos[p])?;
        self.pos[p] += 1;
        Some(ev)
    }

    fn exhausted(&mut self, proc: ProcId) -> bool {
        let p = proc.index();
        self.pos[p] >= self.trace.per_proc[p].len()
    }

    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let p = proc.index();
        let events = &self.trace.per_proc[p];
        let take = (events.len() - self.pos[p]).min(max);
        out.extend_from_slice(&events[self.pos[p]..self.pos[p] + take]);
        self.pos[p] += take;
        take
    }

    /// Pulled-event statistics, identical in mid-stream meaning to what the
    /// demultiplexing sources report: exactly the events the consumer has
    /// seen, no matter which source implementation is behind the trait.
    fn stats_so_far(&self) -> TraceStats {
        let mut lazy = self.stats.borrow_mut();
        let LazyCursorStats { acc, seen } = &mut *lazy;
        for (p, seen_pos) in seen.iter_mut().enumerate() {
            for ev in &self.trace.per_proc[p][*seen_pos..self.pos[p]] {
                acc.observe(ProcId(p as u16), ev);
            }
            *seen_pos = self.pos[p];
        }
        lazy.acc.snapshot()
    }
}

/// Floor of the default cap on a demultiplexing source's parked-event
/// window (see [`default_window_cap`]).
pub const DEFAULT_WINDOW_CAP: usize = 4 << 20;

/// Per-processor allowance folded into the default window cap.
///
/// The legitimate window is a fraction of one phase, and phases grow with
/// the machine — radix's global-rank phase is O(procs²) events (every
/// processor reads every processor's histogram), so a flat cap that is
/// generous at 32 processors would false-positive on a 384-processor
/// sweep point.  256K events per processor covers the widest phase of
/// every Table 2 generator up to ~2000 processors.
pub const WINDOW_CAP_PER_PROC: usize = 256 << 10;

/// The default parked-event window cap for a machine: the flat
/// [`DEFAULT_WINDOW_CAP`] floor or [`WINDOW_CAP_PER_PROC`] per processor,
/// whichever is larger.  Far above any legitimate phase window at that
/// machine size, far below a whole trace, so it trips on a genuine
/// buffering blow-up (an adversarial pull order against a stream without
/// early end markers) long before the process feels it.
pub fn default_window_cap(topology: Topology) -> usize {
    DEFAULT_WINDOW_CAP.max(topology.total_procs() * WINDOW_CAP_PER_PROC)
}

/// Shared demultiplexing state for sources that read one interleaved event
/// stream (a step generator's emission, channel batches, trace-file
/// records) and serve per-processor pull cursors: small per-processor
/// queues, per-processor end-of-stream flags, the incremental statistics
/// every *pulled* event flows through, and the hard window cap.
///
/// [`FusedSource`], [`ThreadedSource`] and [`crate::replay::ReplaySource`]
/// drive their `next_event`/`exhausted` loops off this one struct, so the
/// demux semantics cannot drift between them.
#[derive(Debug)]
pub(crate) struct Demux {
    buffers: Vec<VecDeque<TraceEvent>>,
    ended: Vec<bool>,
    stats: StatsAccumulator,
    /// Total parked events across all buffers.
    buffered: usize,
    window_cap: usize,
    poisoned: Option<TraceError>,
}

impl Demux {
    pub(crate) fn new(topology: Topology) -> Self {
        Demux {
            buffers: vec![VecDeque::new(); topology.total_procs()],
            ended: vec![false; topology.total_procs()],
            stats: StatsAccumulator::new(topology),
            buffered: 0,
            window_cap: default_window_cap(topology),
            poisoned: None,
        }
    }

    pub(crate) fn set_window_cap(&mut self, cap: usize) {
        self.window_cap = cap.max(1);
    }

    /// Park one demultiplexed event for `proc`.  On window overflow the
    /// demux poisons itself: the backlog is dropped, every stream reports
    /// ended, and the error waits in [`Demux::take_error`].
    pub(crate) fn push(&mut self, proc: ProcId, ev: TraceEvent) {
        if self.poisoned.is_some() {
            return;
        }
        if self.buffered >= self.window_cap {
            self.poisoned = Some(TraceError::StreamWindowExceeded {
                buffered: self.buffered,
                cap: self.window_cap,
            });
            for buf in &mut self.buffers {
                buf.clear();
            }
            self.buffered = 0;
            self.ended.fill(true);
            return;
        }
        self.buffered += 1;
        self.buffers[proc.index()].push_back(ev);
    }

    /// Record that `proc`'s stream has no further events (an explicit
    /// end-of-stream marker, or overall end of the underlying stream).
    pub(crate) fn end(&mut self, proc: ProcId) {
        self.ended[proc.index()] = true;
    }

    /// Mark every processor ended (overall end of the underlying stream).
    pub(crate) fn end_all(&mut self) {
        self.ended.fill(true);
    }

    pub(crate) fn pop(&mut self, proc: ProcId) -> Option<TraceEvent> {
        let ev = self.buffers[proc.index()].pop_front()?;
        self.buffered -= 1;
        self.stats.observe(proc, &ev);
        Some(ev)
    }

    /// Pop up to `max` already-parked events for `proc` into `out`.
    /// Deliberately does *not* trigger any upstream pumping — burst pulls
    /// take only what the serial pump sequence has already produced, so
    /// window-cap behavior is position-identical under either pull API.
    pub(crate) fn pop_burst(
        &mut self,
        proc: ProcId,
        out: &mut Vec<TraceEvent>,
        max: usize,
    ) -> usize {
        let buf = &mut self.buffers[proc.index()];
        let take = buf.len().min(max);
        for _ in 0..take {
            // dsm-lint: allow(panic-path, take is min of len and max so exactly take pops succeed; length-checked in the line above)
            let ev = buf.pop_front().expect("length-checked pop");
            self.stats.observe(proc, &ev);
            out.push(ev);
        }
        self.buffered -= take;
        take
    }

    pub(crate) fn has_buffered(&self, proc: ProcId) -> bool {
        !self.buffers[proc.index()].is_empty()
    }

    pub(crate) fn is_ended(&self, proc: ProcId) -> bool {
        self.ended[proc.index()]
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    pub(crate) fn take_error(&mut self) -> Option<TraceError> {
        self.poisoned.take()
    }

    pub(crate) fn buffered_events(&self) -> usize {
        self.buffered
    }

    pub(crate) fn stats(&self) -> TraceStats {
        self.stats.snapshot()
    }
}

/// The demux viewed as an [`EventSink`]: what a [`FusedSource`] hands its
/// step generator each pump.
pub(crate) struct DemuxSink<'a>(pub(crate) &'a mut Demux);

impl EventSink for DemuxSink<'_> {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        self.0.push(proc, ev);
    }
    fn end_of_stream(&mut self, proc: ProcId) {
        self.0.end(proc);
    }
}

/// A resumable trace generator: the producer half of [`FusedSource`].
///
/// Each [`step`](StepGenerator::step) call emits a bounded batch of events
/// (typically one processor's slice of one phase) into the sink it is
/// handed and returns `true` while more remain.  The generator owns all of
/// its state — loop counters, RNG, a [`crate::builder::StepWriter`] — so
/// the consumer can interleave steps with event pulls on one thread.
///
/// Implementations must emit per-processor end-of-stream markers
/// ([`crate::builder::StepWriter::finish`]) when done, and must emit the
/// same event sequences regardless of how the calls are interleaved with
/// other work: two equally constructed generators stepped to completion
/// produce bit-identical streams.
pub trait StepGenerator: Send {
    /// Emit the next bounded batch into `sink`; `false` once the trace is
    /// complete (the final call emits the end-of-stream markers).  Not
    /// called again after returning `false`.
    fn step(&mut self, sink: &mut dyn EventSink) -> bool;
}

/// A [`TraceSource`] that runs its generator *inside* the consumer's pull
/// loop.
///
/// When the pulled processor's queue is empty, the source steps the
/// generator until that processor has an event (or its end marker).  No
/// thread, no channel, no batch copies: events go straight from the
/// generator's emission into the per-processor queues the consumer pops.
/// Peak memory is the skew between emission order and consumption order —
/// for the phase-structured SPLASH generators, a fraction of one phase —
/// guarded by the same window cap as every demultiplexing source.
///
/// This is the right source when producer and consumer share a core (every
/// experiment worker thread runs one simulation); [`ThreadedSource`]
/// remains for overlapping generation with simulation on a spare core and
/// for feeding recorders.
pub struct FusedSource {
    name: String,
    topology: Topology,
    generator: Option<Box<dyn StepGenerator>>,
    demux: Demux,
}

impl std::fmt::Debug for FusedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedSource")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl FusedSource {
    /// Wrap a step generator as a pull source for `topology`.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        generator: Box<dyn StepGenerator>,
    ) -> Self {
        FusedSource {
            name: name.into(),
            topology,
            generator: Some(generator),
            demux: Demux::new(topology),
        }
    }

    /// Replace the parked-event window cap (default
    /// [`default_window_cap`] for the source's topology).
    pub fn with_window_cap(mut self, cap: usize) -> Self {
        self.demux.set_window_cap(cap);
        self
    }

    /// Run the generator for one step.  Returns `false` once it (or the
    /// window cap) ended the stream.
    fn pump(&mut self) -> bool {
        let Some(generator) = &mut self.generator else {
            return false;
        };
        let more = generator.step(&mut DemuxSink(&mut self.demux));
        if !more {
            self.generator = None;
            self.demux.end_all();
        } else if self.demux.is_poisoned() {
            self.generator = None;
        }
        more && !self.demux.is_poisoned()
    }
}

impl TraceSource for FusedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        loop {
            if let Some(ev) = self.demux.pop(proc) {
                return Some(ev);
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return None;
            }
        }
    }

    fn exhausted(&mut self, proc: ProcId) -> bool {
        loop {
            if self.demux.has_buffered(proc) {
                return false;
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return true;
            }
        }
    }

    /// Burst pull: pump only until `proc` has *a* first event (the same
    /// pump sequence one `next_event` performs), then take whatever the
    /// demux has already parked for it, up to `max`.
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        loop {
            let n = self.demux.pop_burst(proc, out, max);
            if n > 0 {
                return n;
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return 0;
            }
        }
    }

    fn stats_so_far(&self) -> TraceStats {
        self.demux.stats()
    }

    fn buffered_events(&self) -> usize {
        self.demux.buffered_events()
    }

    fn take_error(&mut self) -> Option<TraceError> {
        self.demux.take_error()
    }
}

/// Events per channel batch: big enough to amortize channel synchronization,
/// small enough that a batch is a rounding error next to any real trace.
pub(crate) const BATCH_EVENTS: usize = 1024;
/// Batches the channel buffers before the producer blocks.  Bounded memory:
/// the producer can run at most `BATCH_BUFFER * BATCH_EVENTS` events ahead
/// of the consumer (plus whatever the consumer demultiplexes while waiting
/// for a specific processor's next event — itself bounded by the window
/// cap).
pub(crate) const BATCH_BUFFER: usize = 32;

/// What flows through a [`ThreadedSource`]'s (or
/// [`crate::sharded::ShardedSource`] lane's) channel: event batches,
/// interleaved with per-processor end-of-stream markers at the positions
/// the generator emitted them.
pub(crate) enum Chunk {
    Events(Vec<(u16, TraceEvent)>),
    EndOfStream(u16),
}

/// The producer half of [`ThreadedSource`]: an [`EventSink`] that ships
/// events to the consumer in bounded batches.
pub(crate) struct ChannelSink {
    tx: mpsc::SyncSender<Chunk>,
    buf: Vec<(u16, TraceEvent)>,
    /// Set once the consumer hung up; subsequent events are discarded so the
    /// generator can run to completion (cheap) instead of unwinding.
    dead: bool,
}

impl ChannelSink {
    pub(crate) fn new(tx: mpsc::SyncSender<Chunk>) -> Self {
        ChannelSink {
            tx,
            buf: Vec::with_capacity(BATCH_EVENTS),
            dead: false,
        }
    }

    pub(crate) fn flush(&mut self) {
        if self.dead || self.buf.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(BATCH_EVENTS));
        if self.tx.send(Chunk::Events(batch)).is_err() {
            self.dead = true;
        }
    }
}

impl EventSink for ChannelSink {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        if self.dead {
            return;
        }
        self.buf.push((proc.0, ev));
        if self.buf.len() >= BATCH_EVENTS {
            self.flush();
        }
    }

    fn end_of_stream(&mut self, proc: ProcId) {
        // Order matters: the marker must arrive after every event the
        // processor emitted, so flush the pending batch first.
        self.flush();
        if !self.dead && self.tx.send(Chunk::EndOfStream(proc.0)).is_err() {
            self.dead = true;
        }
    }
}

/// A [`TraceSource`] produced by a generator running on its own thread.
///
/// The generator emits events in program order into a bounded channel; the
/// consumer demultiplexes them into small per-processor queues as the
/// simulator pulls.  Peak memory is the channel bound plus the skew between
/// emission order and consumption order (for the phase-structured SPLASH-2
/// generators: a fraction of one phase), *not* the trace size.
///
/// Per-processor end-of-stream markers flow through the channel at the
/// position the generator emitted them, so a processor's exhaustion is
/// observable as soon as its stream actually ends — the window between a
/// processor going quiet and the consumer learning it is gone for
/// well-formed generators, and hard-capped
/// ([`TraceError::StreamWindowExceeded`]) for everything else.
pub struct ThreadedSource {
    name: String,
    topology: Topology,
    rx: Option<mpsc::Receiver<Chunk>>,
    handle: Option<std::thread::JoinHandle<()>>,
    demux: Demux,
}

impl std::fmt::Debug for ThreadedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedSource")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

impl ThreadedSource {
    /// Run `generate` on a fresh thread and stream whatever it emits.
    ///
    /// `generate` receives an [`EventSink`] and must emit a well-formed
    /// trace for `topology` (same contract as emitting into a
    /// [`crate::TraceBuilder`]).  Dropping the source early is safe: the
    /// sink discards everything emitted after the hang-up and the thread
    /// exits once `generate` returns (generation is the cheap half of the
    /// pipeline — the remainder costs background CPU, never memory).
    pub fn spawn<F>(name: impl Into<String>, topology: Topology, generate: F) -> Self
    where
        F: FnOnce(&mut dyn EventSink) + Send + 'static,
    {
        let (tx, rx) = mpsc::sync_channel(BATCH_BUFFER);
        let handle = std::thread::Builder::new()
            .name("trace-generator".into())
            .spawn(move || {
                let mut sink = ChannelSink::new(tx);
                generate(&mut sink);
                sink.flush();
            })
            // dsm-lint: allow(panic-path, thread creation failure is an OS resource error not input-dependent; fail fast)
            .expect("spawn trace-generator thread");
        ThreadedSource {
            name: name.into(),
            topology,
            rx: Some(rx),
            handle: Some(handle),
            demux: Demux::new(topology),
        }
    }

    /// Replace the parked-event window cap (default
    /// [`default_window_cap`] for the source's topology).
    pub fn with_window_cap(mut self, cap: usize) -> Self {
        self.demux.set_window_cap(cap);
        self
    }

    /// Receive one chunk and demultiplex it.  Returns `false` at end of
    /// stream (or once the window cap poisoned the demux — the channel is
    /// then dropped so the producer winds down on its own).  Propagates a
    /// generator panic to the consumer.
    fn pump(&mut self) -> bool {
        let Some(rx) = &self.rx else { return false };
        match rx.recv() {
            Ok(chunk) => {
                match chunk {
                    Chunk::Events(batch) => {
                        for (p, ev) in batch {
                            self.demux.push(ProcId(p), ev);
                        }
                    }
                    Chunk::EndOfStream(p) => self.demux.end(ProcId(p)),
                }
                if self.demux.is_poisoned() {
                    // Hang up; the generator discards the rest and exits.
                    self.rx = None;
                    return false;
                }
                true
            }
            Err(_) => {
                self.rx = None;
                self.demux.end_all();
                if let Some(handle) = self.handle.take() {
                    if let Err(panic) = handle.join() {
                        std::panic::resume_unwind(panic);
                    }
                }
                false
            }
        }
    }
}

impl TraceSource for ThreadedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        loop {
            if let Some(ev) = self.demux.pop(proc) {
                return Some(ev);
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return None;
            }
        }
    }

    fn exhausted(&mut self, proc: ProcId) -> bool {
        loop {
            if self.demux.has_buffered(proc) {
                return false;
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return true;
            }
        }
    }

    /// Burst pull: receive chunks only until `proc` has a first event,
    /// then drain what the demux already parked for it (see
    /// [`FusedSource::next_burst`] — same contract, channel-fed).
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        loop {
            let n = self.demux.pop_burst(proc, out, max);
            if n > 0 {
                return n;
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return 0;
            }
        }
    }

    fn stats_so_far(&self) -> TraceStats {
        self.demux.stats()
    }

    fn buffered_events(&self) -> usize {
        self.demux.buffered_events()
    }

    fn take_error(&mut self) -> Option<TraceError> {
        self.demux.take_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;
    use crate::builder::{StepWriter, TraceBuilder, TraceWriter};

    fn toy_trace() -> ProgramTrace {
        let topo = Topology::new(2, 1);
        let mut b = TraceBuilder::new("toy", topo).with_think_cycles(2);
        b.read(ProcId(0), GlobalAddr(0));
        b.barrier_all();
        b.write(ProcId(1), GlobalAddr(4096));
        b.lock(ProcId(1), 7);
        b.unlock(ProcId(1), 7);
        b.build()
    }

    /// A step generator replaying the toy trace: one event per step, fair
    /// round-robin, end markers when each processor drains.
    struct ToySteps {
        trace: ProgramTrace,
        pos: Vec<usize>,
        next: usize,
    }

    impl ToySteps {
        fn new(trace: ProgramTrace) -> Self {
            let procs = trace.per_proc.len();
            ToySteps {
                trace,
                pos: vec![0; procs],
                next: 0,
            }
        }
    }

    impl StepGenerator for ToySteps {
        fn step(&mut self, sink: &mut dyn EventSink) -> bool {
            let procs = self.pos.len();
            for _ in 0..procs {
                let p = self.next;
                self.next = (self.next + 1) % procs;
                if let Some(ev) = self.trace.per_proc[p].get(self.pos[p]) {
                    sink.event(ProcId(p as u16), *ev);
                    self.pos[p] += 1;
                    if self.pos[p] == self.trace.per_proc[p].len() {
                        sink.end_of_stream(ProcId(p as u16));
                    }
                    return true;
                }
            }
            false
        }
    }

    #[test]
    fn cursor_replays_the_trace_per_proc() {
        let trace = toy_trace();
        let mut src = trace.source();
        assert_eq!(src.name(), "toy");
        assert_eq!(src.topology(), trace.topology);
        for p in trace.topology.proc_ids() {
            let mut got = Vec::new();
            while let Some(ev) = src.next_event(p) {
                got.push(ev);
            }
            assert_eq!(got, trace.per_proc[p.index()]);
            assert!(src.exhausted(p));
        }
        assert_eq!(src.stats_so_far(), trace.stats());
        assert_eq!(src.buffered_events(), 0);
        assert!(src.take_error().is_none());
    }

    #[test]
    fn cursor_streams_are_independent() {
        let trace = toy_trace();
        let mut src = trace.source();
        // Draining proc 1 first must not disturb proc 0's stream.
        while src.next_event(ProcId(1)).is_some() {}
        assert!(!src.exhausted(ProcId(0)));
        assert_eq!(src.next_event(ProcId(0)), Some(trace.per_proc[0][0]));
    }

    #[test]
    fn cursor_stats_track_the_pulled_prefix_incrementally() {
        let trace = toy_trace();
        let mut src = trace.source();
        assert_eq!(src.stats_so_far(), TraceStats::default());
        src.next_event(ProcId(0)); // think
        src.next_event(ProcId(0)); // read
        let mid = src.stats_so_far();
        assert_eq!(mid.accesses, 1);
        assert_eq!(mid.reads, 1);
        assert_eq!(mid.compute_cycles, 2);
        for p in trace.topology.proc_ids() {
            while src.next_event(p).is_some() {}
        }
        assert_eq!(src.stats_so_far(), trace.stats());
    }

    #[test]
    fn fused_source_matches_materialized_trace() {
        let trace = toy_trace();
        let topo = trace.topology;
        let mut src = FusedSource::new("toy", topo, Box::new(ToySteps::new(trace.clone())));
        // Pull in an adversarial order: proc 1 fully first.
        let mut p1 = Vec::new();
        while let Some(ev) = src.next_event(ProcId(1)) {
            p1.push(ev);
        }
        let mut p0 = Vec::new();
        while let Some(ev) = src.next_event(ProcId(0)) {
            p0.push(ev);
        }
        assert_eq!(p0, trace.per_proc[0]);
        assert_eq!(p1, trace.per_proc[1]);
        assert!(src.exhausted(ProcId(0)) && src.exhausted(ProcId(1)));
        assert_eq!(src.stats_so_far(), trace.stats());
        assert!(src.take_error().is_none());
    }

    #[test]
    fn fused_source_window_cap_poisons_instead_of_growing() {
        // A generator whose proc 0 emits forever while proc 1 stays silent:
        // pulling proc 1 must hit the cap and surface the error, not OOM.
        struct Endless(u64);
        impl StepGenerator for Endless {
            fn step(&mut self, sink: &mut dyn EventSink) -> bool {
                sink.event(ProcId(0), TraceEvent::read(GlobalAddr(self.0 * 64)));
                self.0 += 1;
                true
            }
        }
        let topo = Topology::new(2, 1);
        let mut src =
            FusedSource::new("endless", topo, Box::new(Endless(0))).with_window_cap(1_000);
        assert!(src.next_event(ProcId(1)).is_none());
        assert!(src.buffered_events() <= 1_000);
        match src.take_error() {
            Some(TraceError::StreamWindowExceeded { buffered, cap }) => {
                assert_eq!(cap, 1_000);
                assert!(buffered >= 1_000);
            }
            other => panic!("expected StreamWindowExceeded, got {other:?}"),
        }
        // Poisoned: everything reports exhausted.
        assert!(src.exhausted(ProcId(0)));
    }

    #[test]
    fn threaded_source_matches_materialized_trace() {
        let trace = toy_trace();
        let topo = trace.topology;
        let mut src = ThreadedSource::spawn("toy", topo, move |sink| {
            let mut w = TraceWriter::new(topo, sink).with_think_cycles(2);
            w.read(ProcId(0), GlobalAddr(0));
            w.barrier_all();
            w.write(ProcId(1), GlobalAddr(4096));
            w.lock(ProcId(1), 7);
            w.unlock(ProcId(1), 7);
            w.finish();
        });
        // Pull in an adversarial order: proc 1 fully first.
        let mut p1 = Vec::new();
        while let Some(ev) = src.next_event(ProcId(1)) {
            p1.push(ev);
        }
        let mut p0 = Vec::new();
        while let Some(ev) = src.next_event(ProcId(0)) {
            p0.push(ev);
        }
        assert_eq!(p0, trace.per_proc[0]);
        assert_eq!(p1, trace.per_proc[1]);
        assert!(src.exhausted(ProcId(0)) && src.exhausted(ProcId(1)));
        assert_eq!(src.stats_so_far(), trace.stats());
    }

    #[test]
    fn threaded_end_markers_bound_the_exhaustion_window() {
        // Proc 1 emits one event and ends; proc 0 keeps going for 100k
        // events.  With the marker flowing through the channel, draining
        // proc 1 and asking about its exhaustion must not pull proc 0's
        // stream through the demux.
        let topo = Topology::new(2, 1);
        let mut src = ThreadedSource::spawn("uneven", topo, move |sink| {
            let mut w = StepWriter::new(topo);
            w.read(sink, ProcId(1), GlobalAddr(0));
            sink.end_of_stream(ProcId(1));
            for i in 0..100_000u64 {
                w.read(sink, ProcId(0), GlobalAddr(i * 64));
            }
            sink.end_of_stream(ProcId(0));
        });
        assert!(src.next_event(ProcId(1)).is_some());
        assert!(src.next_event(ProcId(1)).is_none());
        assert!(src.exhausted(ProcId(1)));
        assert!(
            src.buffered_events() <= 2 * BATCH_EVENTS,
            "exhaustion query dragged {} events through the demux",
            src.buffered_events()
        );
        // The rest still streams intact.
        let mut got0 = 0usize;
        while src.next_event(ProcId(0)).is_some() {
            got0 += 1;
        }
        assert_eq!(got0, 100_000);
    }

    #[test]
    fn threaded_window_cap_poisons_instead_of_growing() {
        // No end marker for the quiet proc 1: the adversarial pull order
        // that used to buffer the whole stream now trips the cap.
        let topo = Topology::new(2, 1);
        let mut src = ThreadedSource::spawn("runaway", topo, move |sink| {
            let mut w = StepWriter::new(topo);
            for i in 0..1_000_000u64 {
                w.read(sink, ProcId(0), GlobalAddr(i * 64));
            }
        })
        .with_window_cap(10_000);
        assert!(src.next_event(ProcId(1)).is_none());
        assert!(src.buffered_events() <= 10_000);
        assert!(matches!(
            src.take_error(),
            Some(TraceError::StreamWindowExceeded { cap: 10_000, .. })
        ));
        assert!(src.exhausted(ProcId(0)));
    }

    #[test]
    fn default_window_cap_scales_with_the_machine() {
        // Flat floor for small machines…
        assert_eq!(default_window_cap(Topology::new(2, 1)), DEFAULT_WINDOW_CAP);
        assert_eq!(
            default_window_cap(Topology::new(8, 4)),
            32 * WINDOW_CAP_PER_PROC
        );
        // …per-processor allowance for wide ones: radix's global-rank phase
        // is O(procs²) events, so a 384-processor sweep point legitimately
        // parks more than the flat floor.
        let wide = default_window_cap(Topology::new(96, 4));
        assert_eq!(wide, 384 * WINDOW_CAP_PER_PROC);
        assert!(wide > DEFAULT_WINDOW_CAP);
    }

    #[test]
    fn threaded_source_survives_early_drop() {
        let topo = Topology::new(1, 1);
        let mut src = ThreadedSource::spawn("big", topo, move |sink| {
            let mut w = TraceWriter::new(topo, sink);
            for i in 0..1_000_000u64 {
                w.read(ProcId(0), GlobalAddr(i * 64));
            }
        });
        // Consume a handful of events, then drop: the generator thread must
        // wind down on its own without blocking anything.
        for _ in 0..10 {
            assert!(src.next_event(ProcId(0)).is_some());
        }
        drop(src);
    }

    #[test]
    #[should_panic(expected = "generator exploded")]
    fn generator_panic_propagates_to_the_consumer() {
        let topo = Topology::new(1, 1);
        let mut src = ThreadedSource::spawn("bad", topo, move |sink| {
            let mut w = TraceWriter::new(topo, sink);
            w.read(ProcId(0), GlobalAddr(0));
            panic!("generator exploded");
        });
        while src.next_event(ProcId(0)).is_some() {}
    }
}
