//! Convenience builders for emitting well-formed per-processor traces.
//!
//! Workload generators describe *which* shared locations each processor
//! touches; the emission machinery here keeps barrier ids consistent across
//! processors and applies a configurable "compute cost per access" so that
//! generators stay declarative.
//!
//! Three layers:
//!
//! * [`StepWriter`] is the sink-less core: it owns the emission state
//!   (barrier numbering, per-processor event counts, think cycles) but
//!   *borrows* the [`EventSink`] per call.  Resumable step-function
//!   generators ([`crate::source::StepGenerator`]) hold a `StepWriter`
//!   across steps while the fused pull loop hands them a fresh sink borrow
//!   each time.
//! * [`TraceWriter`] owns its sink — a set of in-memory vectors, a bounded
//!   channel feeding a running simulation
//!   ([`crate::source::ThreadedSource`]), or a trace file recorder.  This is
//!   what the streaming trace pipeline is built on: the same generator code
//!   produces the same event sequences no matter where they go.
//! * [`TraceBuilder`] is the classic materializing front-end: a
//!   `TraceWriter` over per-processor vectors plus [`TraceBuilder::build`]
//!   returning a [`ProgramTrace`].

use crate::access::TraceEvent;
use crate::addr::{GlobalAddr, ProcId, Topology};
use crate::trace::ProgramTrace;

/// Receives the events a workload generator emits, in program order.
///
/// Implementations decide what "program order" becomes: `Vec<Vec<TraceEvent>>`
/// materializes per-processor vectors, the channel sink behind
/// [`crate::source::ThreadedSource`] forwards events to a consumer as they
/// are produced, and the recorder in [`crate::replay`] writes them to disk.
pub trait EventSink {
    /// Accept one event emitted by `proc`.
    fn event(&mut self, proc: ProcId, ev: TraceEvent);

    /// `proc` will emit nothing further (an explicit end-of-stream marker).
    ///
    /// Generators signal this as soon as a processor's stream is complete —
    /// [`StepWriter::finish`] does it for every processor at once — so
    /// demultiplexing consumers can answer "is this processor done?"
    /// without buffering the rest of every other stream.  Sinks that do not
    /// care (the materializing vectors) ignore it.
    fn end_of_stream(&mut self, proc: ProcId) {
        let _ = proc;
    }
}

/// The materializing sink: one vector of events per processor, indexed by
/// `ProcId::index()`.
impl EventSink for Vec<Vec<TraceEvent>> {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        self[proc.index()].push(ev);
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        (**self).event(proc, ev);
    }
    fn end_of_stream(&mut self, proc: ProcId) {
        (**self).end_of_stream(proc);
    }
}

/// The sink-less emission core: barrier numbering, per-processor event
/// counts and the implicit think-cycle delay, with the [`EventSink`]
/// borrowed per call instead of owned.
///
/// This is what makes generators *resumable*: a step-function generator
/// keeps its `StepWriter` (and loop counters) across steps while each
/// [`step`](crate::source::StepGenerator::step) call hands it whatever sink
/// the pipeline is currently driving — the fused source's demultiplexer,
/// a channel, or plain vectors.  [`TraceWriter`] wraps this core with an
/// owned sink for straight-line generators.
#[derive(Debug, Clone)]
pub struct StepWriter {
    topology: Topology,
    next_barrier: u32,
    emitted: Vec<usize>,
    /// Compute cycles automatically inserted before every access, modelling
    /// the non-shared work between shared references.
    pub think_cycles: u32,
}

impl StepWriter {
    /// Start emission state for a trace over `topology`.
    pub fn new(topology: Topology) -> Self {
        StepWriter {
            topology,
            next_barrier: 0,
            emitted: vec![0; topology.total_procs()],
            think_cycles: 0,
        }
    }

    /// Set the implicit compute delay inserted before each access.
    pub fn with_think_cycles(mut self, cycles: u32) -> Self {
        self.think_cycles = cycles;
        self
    }

    /// The topology this trace targets.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Emit a shared-memory read by `proc`.
    pub fn read(&mut self, sink: &mut dyn EventSink, proc: ProcId, addr: GlobalAddr) {
        self.pre_access(sink, proc);
        self.emit(sink, proc, TraceEvent::read(addr));
    }

    /// Emit a shared-memory write by `proc`.
    pub fn write(&mut self, sink: &mut dyn EventSink, proc: ProcId, addr: GlobalAddr) {
        self.pre_access(sink, proc);
        self.emit(sink, proc, TraceEvent::write(addr));
    }

    /// Emit an explicit compute delay on `proc`.
    pub fn compute(&mut self, sink: &mut dyn EventSink, proc: ProcId, cycles: u32) {
        if cycles > 0 {
            self.emit(sink, proc, TraceEvent::Compute(cycles));
        }
    }

    /// Emit a lock acquire on `proc`.
    pub fn lock(&mut self, sink: &mut dyn EventSink, proc: ProcId, lock: u32) {
        self.emit(sink, proc, TraceEvent::Lock(lock));
    }

    /// Emit a lock release on `proc`.
    pub fn unlock(&mut self, sink: &mut dyn EventSink, proc: ProcId, lock: u32) {
        self.emit(sink, proc, TraceEvent::Unlock(lock));
    }

    /// Emit a global barrier: every processor gets the same fresh barrier id.
    pub fn barrier_all(&mut self, sink: &mut dyn EventSink) {
        let id = self.next_barrier;
        self.next_barrier += 1;
        for p in 0..self.topology.total_procs() {
            self.emit(sink, ProcId(p as u16), TraceEvent::Barrier(id));
        }
    }

    /// Mark every processor's stream complete (the generators end all
    /// processors together at their final barrier).  Call exactly once, at
    /// the end of emission.
    pub fn finish(&mut self, sink: &mut dyn EventSink) {
        for p in 0..self.topology.total_procs() {
            sink.end_of_stream(ProcId(p as u16));
        }
    }

    /// Number of barriers emitted so far.
    pub fn barriers_emitted(&self) -> u32 {
        self.next_barrier
    }

    /// Number of events emitted by `proc` so far.
    pub fn events_emitted(&self, proc: ProcId) -> usize {
        self.emitted[proc.index()]
    }

    fn emit(&mut self, sink: &mut dyn EventSink, proc: ProcId, ev: TraceEvent) {
        self.emitted[proc.index()] += 1;
        sink.event(proc, ev);
    }

    fn pre_access(&mut self, sink: &mut dyn EventSink, proc: ProcId) {
        if self.think_cycles > 0 {
            self.emit(sink, proc, TraceEvent::Compute(self.think_cycles));
        }
    }
}

/// Emits well-formed per-processor trace events into an owned [`EventSink`].
///
/// This is the generator-facing half of [`TraceBuilder`], generic over where
/// the events go so straight-line generator code can produce either a
/// materialized [`ProgramTrace`] or a bounded-memory stream from the same
/// code path.  (Resumable step-function generators use the underlying
/// [`StepWriter`] directly, borrowing the sink per step.)
#[derive(Debug, Clone)]
pub struct TraceWriter<S: EventSink> {
    core: StepWriter,
    sink: S,
}

impl<S: EventSink> TraceWriter<S> {
    /// Start writing a trace for `topology` into `sink`.
    pub fn new(topology: Topology, sink: S) -> Self {
        TraceWriter {
            core: StepWriter::new(topology),
            sink,
        }
    }

    /// Set the implicit compute delay inserted before each access.
    pub fn with_think_cycles(mut self, cycles: u32) -> Self {
        self.core.think_cycles = cycles;
        self
    }

    /// The implicit compute delay inserted before each access.
    pub fn think_cycles(&self) -> u32 {
        self.core.think_cycles
    }

    /// The topology this trace targets.
    pub fn topology(&self) -> Topology {
        self.core.topology()
    }

    /// Emit a shared-memory read by `proc`.
    pub fn read(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.core.read(&mut self.sink, proc, addr);
    }

    /// Emit a shared-memory write by `proc`.
    pub fn write(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.core.write(&mut self.sink, proc, addr);
    }

    /// Emit an explicit compute delay on `proc`.
    pub fn compute(&mut self, proc: ProcId, cycles: u32) {
        self.core.compute(&mut self.sink, proc, cycles);
    }

    /// Emit a lock acquire on `proc`.
    pub fn lock(&mut self, proc: ProcId, lock: u32) {
        self.core.lock(&mut self.sink, proc, lock);
    }

    /// Emit a lock release on `proc`.
    pub fn unlock(&mut self, proc: ProcId, lock: u32) {
        self.core.unlock(&mut self.sink, proc, lock);
    }

    /// Emit a global barrier: every processor gets the same fresh barrier id.
    pub fn barrier_all(&mut self) {
        self.core.barrier_all(&mut self.sink);
    }

    /// Mark every processor's stream complete (see [`StepWriter::finish`]).
    pub fn finish(&mut self) {
        self.core.finish(&mut self.sink);
    }

    /// Number of barriers emitted so far.
    pub fn barriers_emitted(&self) -> u32 {
        self.core.barriers_emitted()
    }

    /// Number of events emitted by `proc` so far.
    pub fn events_emitted(&self, proc: ProcId) -> usize {
        self.core.events_emitted(proc)
    }

    /// Finish writing and recover the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

/// Builds a [`ProgramTrace`] incrementally (the in-memory sink).
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    name: String,
    writer: TraceWriter<Vec<Vec<TraceEvent>>>,
}

impl TraceBuilder {
    /// Start building a trace for `topology`.
    pub fn new(name: impl Into<String>, topology: Topology) -> Self {
        TraceBuilder {
            name: name.into(),
            writer: TraceWriter::new(topology, vec![Vec::new(); topology.total_procs()]),
        }
    }

    /// Set the implicit compute delay inserted before each access.
    pub fn with_think_cycles(mut self, cycles: u32) -> Self {
        self.writer = self.writer.with_think_cycles(cycles);
        self
    }

    /// The topology this trace targets.
    pub fn topology(&self) -> Topology {
        self.writer.topology()
    }

    /// Emit a shared-memory read by `proc`.
    pub fn read(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.writer.read(proc, addr);
    }

    /// Emit a shared-memory write by `proc`.
    pub fn write(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.writer.write(proc, addr);
    }

    /// Emit an explicit compute delay on `proc`.
    pub fn compute(&mut self, proc: ProcId, cycles: u32) {
        self.writer.compute(proc, cycles);
    }

    /// Emit a lock acquire on `proc`.
    pub fn lock(&mut self, proc: ProcId, lock: u32) {
        self.writer.lock(proc, lock);
    }

    /// Emit a lock release on `proc`.
    pub fn unlock(&mut self, proc: ProcId, lock: u32) {
        self.writer.unlock(proc, lock);
    }

    /// Emit a global barrier: every processor gets the same fresh barrier id.
    pub fn barrier_all(&mut self) {
        self.writer.barrier_all();
    }

    /// Number of barriers emitted so far.
    pub fn barriers_emitted(&self) -> u32 {
        self.writer.barriers_emitted()
    }

    /// Number of events emitted by `proc` so far.
    pub fn events_emitted(&self, proc: ProcId) -> usize {
        self.writer.events_emitted(proc)
    }

    /// Finish and return the assembled trace.
    pub fn build(self) -> ProgramTrace {
        let topology = self.writer.topology();
        ProgramTrace::new(self.name, topology, self.writer.into_sink())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::TraceEvent;

    #[test]
    fn builder_emits_per_proc_events() {
        let topo = Topology::new(2, 2);
        let mut b = TraceBuilder::new("t", topo);
        b.read(ProcId(0), GlobalAddr(0));
        b.write(ProcId(3), GlobalAddr(64));
        b.compute(ProcId(1), 500);
        b.barrier_all();
        let trace = b.build();
        assert_eq!(trace.per_proc[0].len(), 2); // read + barrier
        assert_eq!(trace.per_proc[1].len(), 2); // compute + barrier
        assert_eq!(trace.per_proc[2].len(), 1); // barrier only
        assert_eq!(trace.per_proc[3].len(), 2); // write + barrier
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn think_cycles_inserted_before_accesses() {
        let topo = Topology::new(1, 1);
        let mut b = TraceBuilder::new("t", topo).with_think_cycles(7);
        b.read(ProcId(0), GlobalAddr(0));
        let trace = b.build();
        assert_eq!(
            trace.per_proc[0],
            vec![TraceEvent::Compute(7), TraceEvent::read(GlobalAddr(0))]
        );
    }

    #[test]
    fn zero_compute_is_skipped() {
        let topo = Topology::new(1, 1);
        let mut b = TraceBuilder::new("t", topo);
        b.compute(ProcId(0), 0);
        assert_eq!(b.events_emitted(ProcId(0)), 0);
    }

    #[test]
    fn barriers_have_increasing_ids_everywhere() {
        let topo = Topology::new(2, 1);
        let mut b = TraceBuilder::new("t", topo);
        b.barrier_all();
        b.barrier_all();
        assert_eq!(b.barriers_emitted(), 2);
        let trace = b.build();
        for events in &trace.per_proc {
            assert_eq!(
                events,
                &vec![TraceEvent::Barrier(0), TraceEvent::Barrier(1)]
            );
        }
    }

    #[test]
    fn locks_round_trip_through_validation() {
        let topo = Topology::new(1, 2);
        let mut b = TraceBuilder::new("t", topo);
        b.lock(ProcId(0), 9);
        b.write(ProcId(0), GlobalAddr(0));
        b.unlock(ProcId(0), 9);
        b.barrier_all();
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn writer_into_dyn_sink_matches_builder() {
        let topo = Topology::new(2, 1);
        let mut direct = TraceBuilder::new("t", topo).with_think_cycles(3);
        direct.read(ProcId(0), GlobalAddr(0));
        direct.barrier_all();
        direct.write(ProcId(1), GlobalAddr(64));
        let direct = direct.build();

        let mut vecs: Vec<Vec<TraceEvent>> = vec![Vec::new(); topo.total_procs()];
        {
            let sink: &mut dyn EventSink = &mut vecs;
            let mut w = TraceWriter::new(topo, sink).with_think_cycles(3);
            w.read(ProcId(0), GlobalAddr(0));
            w.barrier_all();
            w.write(ProcId(1), GlobalAddr(64));
            assert_eq!(w.events_emitted(ProcId(1)), 3); // barrier + think + write
        }
        assert_eq!(direct.per_proc, vecs);
    }

    #[test]
    fn step_writer_matches_owned_writer_across_borrows() {
        // The sink-less core, handed its sink one call at a time (as the
        // fused pull loop does), emits exactly what the owned writer does.
        let topo = Topology::new(2, 1);
        let mut direct = TraceBuilder::new("t", topo).with_think_cycles(2);
        direct.read(ProcId(0), GlobalAddr(0));
        direct.barrier_all();
        direct.lock(ProcId(1), 3);
        direct.write(ProcId(1), GlobalAddr(64));
        direct.unlock(ProcId(1), 3);
        let direct = direct.build();

        let mut vecs: Vec<Vec<TraceEvent>> = vec![Vec::new(); topo.total_procs()];
        let mut w = StepWriter::new(topo).with_think_cycles(2);
        w.read(&mut vecs, ProcId(0), GlobalAddr(0));
        w.barrier_all(&mut vecs);
        w.lock(&mut vecs, ProcId(1), 3);
        w.write(&mut vecs, ProcId(1), GlobalAddr(64));
        w.unlock(&mut vecs, ProcId(1), 3);
        w.finish(&mut vecs); // no-op for the materializing sink
        assert_eq!(direct.per_proc, vecs);
        assert_eq!(w.barriers_emitted(), 1);
        // barrier + lock + think + write + unlock
        assert_eq!(w.events_emitted(ProcId(1)), 5);
    }

    #[test]
    fn end_of_stream_defaults_to_a_no_op() {
        struct CountingSink {
            events: usize,
            ends: Vec<u16>,
        }
        impl EventSink for CountingSink {
            fn event(&mut self, _proc: ProcId, _ev: TraceEvent) {
                self.events += 1;
            }
            fn end_of_stream(&mut self, proc: ProcId) {
                self.ends.push(proc.0);
            }
        }
        let topo = Topology::new(2, 1);
        let mut sink = CountingSink {
            events: 0,
            ends: Vec::new(),
        };
        let mut w = StepWriter::new(topo);
        w.write(&mut sink, ProcId(0), GlobalAddr(0));
        w.finish(&mut sink);
        assert_eq!(sink.events, 1);
        assert_eq!(sink.ends, vec![0, 1]);
    }
}
