//! Convenience builders for emitting well-formed per-processor traces.
//!
//! Workload generators describe *which* shared locations each processor
//! touches; the emission machinery here keeps barrier ids consistent across
//! processors and applies a configurable "compute cost per access" so that
//! generators stay declarative.
//!
//! Two layers:
//!
//! * [`TraceWriter`] emits events into any [`EventSink`] — a set of
//!   in-memory vectors, a bounded channel feeding a running simulation
//!   ([`crate::source::ThreadedSource`]), or a trace file recorder.  This is
//!   what the streaming trace pipeline is built on: the same generator code
//!   produces the same event sequences no matter where they go.
//! * [`TraceBuilder`] is the classic materializing front-end: a
//!   `TraceWriter` over per-processor vectors plus [`TraceBuilder::build`]
//!   returning a [`ProgramTrace`].

use crate::access::TraceEvent;
use crate::addr::{GlobalAddr, ProcId, Topology};
use crate::trace::ProgramTrace;

/// Receives the events a workload generator emits, in program order.
///
/// Implementations decide what "program order" becomes: `Vec<Vec<TraceEvent>>`
/// materializes per-processor vectors, the channel sink behind
/// [`crate::source::ThreadedSource`] forwards events to a consumer as they
/// are produced, and the recorder in [`crate::replay`] writes them to disk.
pub trait EventSink {
    /// Accept one event emitted by `proc`.
    fn event(&mut self, proc: ProcId, ev: TraceEvent);
}

/// The materializing sink: one vector of events per processor, indexed by
/// `ProcId::index()`.
impl EventSink for Vec<Vec<TraceEvent>> {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        self[proc.index()].push(ev);
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        (**self).event(proc, ev);
    }
}

/// Emits well-formed per-processor trace events into an [`EventSink`].
///
/// This is the generator-facing half of [`TraceBuilder`], generic over where
/// the events go so the seven workload generators can produce either a
/// materialized [`ProgramTrace`] or a bounded-memory stream from the same
/// code path.
#[derive(Debug, Clone)]
pub struct TraceWriter<S: EventSink> {
    topology: Topology,
    sink: S,
    next_barrier: u32,
    emitted: Vec<usize>,
    /// Compute cycles automatically inserted before every access, modelling
    /// the non-shared work between shared references.
    pub think_cycles: u32,
}

impl<S: EventSink> TraceWriter<S> {
    /// Start writing a trace for `topology` into `sink`.
    pub fn new(topology: Topology, sink: S) -> Self {
        TraceWriter {
            topology,
            sink,
            next_barrier: 0,
            emitted: vec![0; topology.total_procs()],
            think_cycles: 0,
        }
    }

    /// Set the implicit compute delay inserted before each access.
    pub fn with_think_cycles(mut self, cycles: u32) -> Self {
        self.think_cycles = cycles;
        self
    }

    /// The topology this trace targets.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Emit a shared-memory read by `proc`.
    pub fn read(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.pre_access(proc);
        self.emit(proc, TraceEvent::read(addr));
    }

    /// Emit a shared-memory write by `proc`.
    pub fn write(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.pre_access(proc);
        self.emit(proc, TraceEvent::write(addr));
    }

    /// Emit an explicit compute delay on `proc`.
    pub fn compute(&mut self, proc: ProcId, cycles: u32) {
        if cycles > 0 {
            self.emit(proc, TraceEvent::Compute(cycles));
        }
    }

    /// Emit a lock acquire on `proc`.
    pub fn lock(&mut self, proc: ProcId, lock: u32) {
        self.emit(proc, TraceEvent::Lock(lock));
    }

    /// Emit a lock release on `proc`.
    pub fn unlock(&mut self, proc: ProcId, lock: u32) {
        self.emit(proc, TraceEvent::Unlock(lock));
    }

    /// Emit a global barrier: every processor gets the same fresh barrier id.
    pub fn barrier_all(&mut self) {
        let id = self.next_barrier;
        self.next_barrier += 1;
        for p in 0..self.topology.total_procs() {
            self.emit(ProcId(p as u16), TraceEvent::Barrier(id));
        }
    }

    /// Number of barriers emitted so far.
    pub fn barriers_emitted(&self) -> u32 {
        self.next_barrier
    }

    /// Number of events emitted by `proc` so far.
    pub fn events_emitted(&self, proc: ProcId) -> usize {
        self.emitted[proc.index()]
    }

    /// Finish writing and recover the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    fn emit(&mut self, proc: ProcId, ev: TraceEvent) {
        self.emitted[proc.index()] += 1;
        self.sink.event(proc, ev);
    }

    fn pre_access(&mut self, proc: ProcId) {
        if self.think_cycles > 0 {
            self.emit(proc, TraceEvent::Compute(self.think_cycles));
        }
    }
}

/// Builds a [`ProgramTrace`] incrementally (the in-memory sink).
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    name: String,
    writer: TraceWriter<Vec<Vec<TraceEvent>>>,
}

impl TraceBuilder {
    /// Start building a trace for `topology`.
    pub fn new(name: impl Into<String>, topology: Topology) -> Self {
        TraceBuilder {
            name: name.into(),
            writer: TraceWriter::new(topology, vec![Vec::new(); topology.total_procs()]),
        }
    }

    /// Set the implicit compute delay inserted before each access.
    pub fn with_think_cycles(mut self, cycles: u32) -> Self {
        self.writer.think_cycles = cycles;
        self
    }

    /// The topology this trace targets.
    pub fn topology(&self) -> Topology {
        self.writer.topology()
    }

    /// Emit a shared-memory read by `proc`.
    pub fn read(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.writer.read(proc, addr);
    }

    /// Emit a shared-memory write by `proc`.
    pub fn write(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.writer.write(proc, addr);
    }

    /// Emit an explicit compute delay on `proc`.
    pub fn compute(&mut self, proc: ProcId, cycles: u32) {
        self.writer.compute(proc, cycles);
    }

    /// Emit a lock acquire on `proc`.
    pub fn lock(&mut self, proc: ProcId, lock: u32) {
        self.writer.lock(proc, lock);
    }

    /// Emit a lock release on `proc`.
    pub fn unlock(&mut self, proc: ProcId, lock: u32) {
        self.writer.unlock(proc, lock);
    }

    /// Emit a global barrier: every processor gets the same fresh barrier id.
    pub fn barrier_all(&mut self) {
        self.writer.barrier_all();
    }

    /// Number of barriers emitted so far.
    pub fn barriers_emitted(&self) -> u32 {
        self.writer.barriers_emitted()
    }

    /// Number of events emitted by `proc` so far.
    pub fn events_emitted(&self, proc: ProcId) -> usize {
        self.writer.events_emitted(proc)
    }

    /// Finish and return the assembled trace.
    pub fn build(self) -> ProgramTrace {
        let topology = self.writer.topology();
        ProgramTrace::new(self.name, topology, self.writer.into_sink())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::TraceEvent;

    #[test]
    fn builder_emits_per_proc_events() {
        let topo = Topology::new(2, 2);
        let mut b = TraceBuilder::new("t", topo);
        b.read(ProcId(0), GlobalAddr(0));
        b.write(ProcId(3), GlobalAddr(64));
        b.compute(ProcId(1), 500);
        b.barrier_all();
        let trace = b.build();
        assert_eq!(trace.per_proc[0].len(), 2); // read + barrier
        assert_eq!(trace.per_proc[1].len(), 2); // compute + barrier
        assert_eq!(trace.per_proc[2].len(), 1); // barrier only
        assert_eq!(trace.per_proc[3].len(), 2); // write + barrier
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn think_cycles_inserted_before_accesses() {
        let topo = Topology::new(1, 1);
        let mut b = TraceBuilder::new("t", topo).with_think_cycles(7);
        b.read(ProcId(0), GlobalAddr(0));
        let trace = b.build();
        assert_eq!(
            trace.per_proc[0],
            vec![TraceEvent::Compute(7), TraceEvent::read(GlobalAddr(0))]
        );
    }

    #[test]
    fn zero_compute_is_skipped() {
        let topo = Topology::new(1, 1);
        let mut b = TraceBuilder::new("t", topo);
        b.compute(ProcId(0), 0);
        assert_eq!(b.events_emitted(ProcId(0)), 0);
    }

    #[test]
    fn barriers_have_increasing_ids_everywhere() {
        let topo = Topology::new(2, 1);
        let mut b = TraceBuilder::new("t", topo);
        b.barrier_all();
        b.barrier_all();
        assert_eq!(b.barriers_emitted(), 2);
        let trace = b.build();
        for events in &trace.per_proc {
            assert_eq!(
                events,
                &vec![TraceEvent::Barrier(0), TraceEvent::Barrier(1)]
            );
        }
    }

    #[test]
    fn locks_round_trip_through_validation() {
        let topo = Topology::new(1, 2);
        let mut b = TraceBuilder::new("t", topo);
        b.lock(ProcId(0), 9);
        b.write(ProcId(0), GlobalAddr(0));
        b.unlock(ProcId(0), 9);
        b.barrier_all();
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn writer_into_dyn_sink_matches_builder() {
        let topo = Topology::new(2, 1);
        let mut direct = TraceBuilder::new("t", topo).with_think_cycles(3);
        direct.read(ProcId(0), GlobalAddr(0));
        direct.barrier_all();
        direct.write(ProcId(1), GlobalAddr(64));
        let direct = direct.build();

        let mut vecs: Vec<Vec<TraceEvent>> = vec![Vec::new(); topo.total_procs()];
        {
            let sink: &mut dyn EventSink = &mut vecs;
            let mut w = TraceWriter::new(topo, sink).with_think_cycles(3);
            w.read(ProcId(0), GlobalAddr(0));
            w.barrier_all();
            w.write(ProcId(1), GlobalAddr(64));
            assert_eq!(w.events_emitted(ProcId(1)), 3); // barrier + think + write
        }
        assert_eq!(direct.per_proc, vecs);
    }
}
