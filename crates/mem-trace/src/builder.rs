//! Convenience builder for emitting well-formed per-processor traces.
//!
//! Workload generators create one [`TraceBuilder`] and emit events through
//! the per-processor handles it exposes.  The builder keeps barrier ids
//! consistent across processors and applies a configurable "compute cost per
//! access" so that generators only have to describe *which* shared locations
//! each processor touches.

use crate::access::TraceEvent;
use crate::addr::{GlobalAddr, ProcId, Topology};
use crate::trace::ProgramTrace;

/// Builds a [`ProgramTrace`] incrementally.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    name: String,
    topology: Topology,
    per_proc: Vec<Vec<TraceEvent>>,
    next_barrier: u32,
    /// Compute cycles automatically inserted before every access, modelling
    /// the non-shared work between shared references.
    pub think_cycles: u32,
}

impl TraceBuilder {
    /// Start building a trace for `topology`.
    pub fn new(name: impl Into<String>, topology: Topology) -> Self {
        TraceBuilder {
            name: name.into(),
            topology,
            per_proc: vec![Vec::new(); topology.total_procs()],
            next_barrier: 0,
            think_cycles: 0,
        }
    }

    /// Set the implicit compute delay inserted before each access.
    pub fn with_think_cycles(mut self, cycles: u32) -> Self {
        self.think_cycles = cycles;
        self
    }

    /// The topology this trace targets.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Emit a shared-memory read by `proc`.
    pub fn read(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.pre_access(proc);
        self.per_proc[proc.index()].push(TraceEvent::read(addr));
    }

    /// Emit a shared-memory write by `proc`.
    pub fn write(&mut self, proc: ProcId, addr: GlobalAddr) {
        self.pre_access(proc);
        self.per_proc[proc.index()].push(TraceEvent::write(addr));
    }

    /// Emit an explicit compute delay on `proc`.
    pub fn compute(&mut self, proc: ProcId, cycles: u32) {
        if cycles > 0 {
            self.per_proc[proc.index()].push(TraceEvent::Compute(cycles));
        }
    }

    /// Emit a lock acquire on `proc`.
    pub fn lock(&mut self, proc: ProcId, lock: u32) {
        self.per_proc[proc.index()].push(TraceEvent::Lock(lock));
    }

    /// Emit a lock release on `proc`.
    pub fn unlock(&mut self, proc: ProcId, lock: u32) {
        self.per_proc[proc.index()].push(TraceEvent::Unlock(lock));
    }

    /// Emit a global barrier: every processor gets the same fresh barrier id.
    pub fn barrier_all(&mut self) {
        let id = self.next_barrier;
        self.next_barrier += 1;
        for events in &mut self.per_proc {
            events.push(TraceEvent::Barrier(id));
        }
    }

    /// Number of barriers emitted so far.
    pub fn barriers_emitted(&self) -> u32 {
        self.next_barrier
    }

    /// Number of events emitted by `proc` so far.
    pub fn events_emitted(&self, proc: ProcId) -> usize {
        self.per_proc[proc.index()].len()
    }

    /// Finish and return the assembled trace.
    pub fn build(self) -> ProgramTrace {
        ProgramTrace::new(self.name, self.topology, self.per_proc)
    }

    fn pre_access(&mut self, proc: ProcId) {
        if self.think_cycles > 0 {
            self.per_proc[proc.index()].push(TraceEvent::Compute(self.think_cycles));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::TraceEvent;

    #[test]
    fn builder_emits_per_proc_events() {
        let topo = Topology::new(2, 2);
        let mut b = TraceBuilder::new("t", topo);
        b.read(ProcId(0), GlobalAddr(0));
        b.write(ProcId(3), GlobalAddr(64));
        b.compute(ProcId(1), 500);
        b.barrier_all();
        let trace = b.build();
        assert_eq!(trace.per_proc[0].len(), 2); // read + barrier
        assert_eq!(trace.per_proc[1].len(), 2); // compute + barrier
        assert_eq!(trace.per_proc[2].len(), 1); // barrier only
        assert_eq!(trace.per_proc[3].len(), 2); // write + barrier
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn think_cycles_inserted_before_accesses() {
        let topo = Topology::new(1, 1);
        let mut b = TraceBuilder::new("t", topo).with_think_cycles(7);
        b.read(ProcId(0), GlobalAddr(0));
        let trace = b.build();
        assert_eq!(
            trace.per_proc[0],
            vec![TraceEvent::Compute(7), TraceEvent::read(GlobalAddr(0))]
        );
    }

    #[test]
    fn zero_compute_is_skipped() {
        let topo = Topology::new(1, 1);
        let mut b = TraceBuilder::new("t", topo);
        b.compute(ProcId(0), 0);
        assert_eq!(b.events_emitted(ProcId(0)), 0);
    }

    #[test]
    fn barriers_have_increasing_ids_everywhere() {
        let topo = Topology::new(2, 1);
        let mut b = TraceBuilder::new("t", topo);
        b.barrier_all();
        b.barrier_all();
        assert_eq!(b.barriers_emitted(), 2);
        let trace = b.build();
        for events in &trace.per_proc {
            assert_eq!(
                events,
                &vec![TraceEvent::Barrier(0), TraceEvent::Barrier(1)]
            );
        }
    }

    #[test]
    fn locks_round_trip_through_validation() {
        let topo = Topology::new(1, 2);
        let mut b = TraceBuilder::new("t", topo);
        b.lock(ProcId(0), 9);
        b.write(ProcId(0), GlobalAddr(0));
        b.unlock(ProcId(0), 9);
        b.barrier_all();
        assert!(b.build().validate().is_ok());
    }
}
