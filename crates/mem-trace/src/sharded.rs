//! Shard-parallel trace supply: [`ShardedSource`].
//!
//! A sharded simulation wants each shard's processors fed independently:
//! with a single generator thread behind one channel
//! ([`crate::source::ThreadedSource`]), pulling one shard's next event can
//! drag arbitrarily many *other* shards' events through the shared demux
//! window first, coupling the shards' progress through the supply layer.
//! `ShardedSource` removes that coupling.  Each shard gets its own **lane**:
//! a replica of the deterministic step generator whose emission is filtered
//! down to the shard's processors (per the [`ShardMap`]), so a pull for
//! shard `s` only ever demultiplexes shard `s`'s traffic.
//!
//! Per-processor streams are bit-identical to [`crate::source::FusedSource`]
//! by construction: every replica of a deterministic [`StepGenerator`] emits
//! the same global event sequence, filtering preserves each processor's
//! subsequence, and a processor's events flow through exactly one lane (its
//! home node's shard) in emission order.  Simulation results therefore
//! cannot depend on the worker count or on thread scheduling — which the
//! swappable backend makes *testable*, not just arguable:
//!
//! * [`ShardedSource::spawn`] runs one OS thread per lane (the production
//!   backend — generation runs concurrently with the consumer);
//! * [`ShardedSource::lockstep`] keeps every replica inline on the caller's
//!   thread and *scripts* the interleaving of lane progress from a seed, so
//!   a test can sweep many adversarial supply schedules deterministically —
//!   a model-checking-style exploration no run-twice test can reach;
//! * [`ShardedSource::scripted`] replays one *explicit* interleaving (a
//!   [`PumpScript`]), and [`ShardedSource::explore`] enumerates **all** of
//!   them to a bounded depth — upgrading the seeded sweep from "16 sampled
//!   schedules" to an exhaustive proof at small scale (see [`PumpScript`]
//!   for the reduction argument that keeps the space finite).
//!
//! The replicas are not free — `S` lanes each run the full generator — but
//! trace generation is the cheap half of the pipeline (PR 5 measured ~13%
//! of a paper-scale radix job), the replicas run concurrently on otherwise
//! idle cores, and each lane ships only its `1/S` slice of the events.

use std::collections::VecDeque;
use std::sync::mpsc;

use crate::access::TraceEvent;
use crate::addr::{ProcId, Topology};
use crate::builder::EventSink;
use crate::shard::ShardMap;
use crate::source::{
    ChannelSink, Chunk, Demux, DemuxSink, StepGenerator, TraceSource, BATCH_BUFFER,
};
use crate::trace::{TraceError, TraceStats};

/// An [`EventSink`] that forwards only one shard's processors.
struct FilterSink<'a> {
    map: ShardMap,
    shard: u16,
    inner: &'a mut dyn EventSink,
}

impl EventSink for FilterSink<'_> {
    fn event(&mut self, proc: ProcId, ev: TraceEvent) {
        if self.map.shard_of_proc(proc) == self.shard {
            self.inner.event(proc, ev);
        }
    }
    fn end_of_stream(&mut self, proc: ProcId) {
        if self.map.shard_of_proc(proc) == self.shard {
            self.inner.end_of_stream(proc);
        }
    }
}

/// One shard's supply: a channel from a generator-replica thread, or the
/// replica itself held inline (the deterministic backend).
enum Lane {
    Thread {
        rx: Option<mpsc::Receiver<Chunk>>,
        handle: Option<std::thread::JoinHandle<()>>,
    },
    Lockstep {
        generator: Option<Box<dyn StepGenerator>>,
    },
}

/// Deterministic 64-bit mixer driving the scripted lockstep schedule
/// (SplitMix64 — tiny, seedable, and good enough to scatter pump orders).
struct Schedule(u64);

impl Schedule {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One explicit lane interleaving for the lockstep backend.
///
/// The script is consulted once per *demanded* pump: entry `k` for demand
/// on lane `s` means "first advance lane `(s + k) % shards` by one step"
/// (`k = 0` means no extra advance), after which the demanded pump runs as
/// usual.  Once the script is spent, pumps proceed demand-only.
///
/// **Why this finite alphabet covers the race space (DPOR-lite).**  Lanes
/// share exactly one piece of state: the demux, which every pump pushes
/// into.  Whether the merged result can depend on thread scheduling is
/// therefore the question of whether it can depend on the *relative order
/// of pushes across lanes* — per-lane order is fixed (each replica is
/// deterministic), so the only schedule freedom is, at each demand point,
/// "which other lanes got ahead before this push?".  Pre-pumping the
/// demanded lane itself commutes with the demanded pump (two steps of one
/// sequential lane — a dependency-free pair in DPOR terms), so `k = 0`
/// canonically represents that whole equivalence class, and the remaining
/// `k ∈ 1..shards` inject each possible cross-lane overtaking at that
/// point.  [`ShardedSource::explore`] enumerates all `shards^depth` scripts
/// of a given length — every reachable cross-lane push ordering whose
/// divergence from demand order is at most one overtake per demand for the
/// first `depth` demands.  The seeded [`ShardedSource::lockstep`] sweep
/// stays useful as a smoke tier at scales where exhaustion is unaffordable:
/// its bursts reach *deeper* overtakes (many pumps per demand) that the
/// bounded alphabet trades away for exhaustiveness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PumpScript {
    offsets: Vec<u16>,
}

impl PumpScript {
    /// A script from raw offsets (each must be `< shards` of the source it
    /// feeds; checked at [`ShardedSource::scripted`] time).
    pub fn new(offsets: Vec<u16>) -> Self {
        PumpScript { offsets }
    }

    /// The empty script: pure demand order.
    pub fn demand_order() -> Self {
        PumpScript {
            offsets: Vec::new(),
        }
    }

    /// The raw offsets.
    pub fn offsets(&self) -> &[u16] {
        &self.offsets
    }

    /// Script length (number of demand points it perturbs).
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the script is empty (pure demand order).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

/// How a `ShardedSource` paces its lanes.
enum Pacing {
    /// Threaded backend: lanes are real threads, the OS schedules them.
    Free,
    /// Lockstep backend, seed-scripted adversarial bursts.
    Seeded(Schedule),
    /// Lockstep backend, one explicit [`PumpScript`] interleaving.
    Scripted { offsets: Vec<u16>, pos: usize },
}

/// A [`TraceSource`] fed by one filtered generator replica per shard.
/// See the [module docs](self) for the determinism argument and the two
/// backends.
pub struct ShardedSource {
    name: String,
    map: ShardMap,
    lanes: Vec<Lane>,
    demux: Demux,
    /// Lane pacing: free-running threads, a seeded burst schedule, or one
    /// explicit script (see [`Pacing`]).
    pacing: Pacing,
}

impl std::fmt::Debug for ShardedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSource")
            .field("name", &self.name)
            .field("topology", &self.map.topology())
            .field("shards", &self.map.shards())
            .finish_non_exhaustive()
    }
}

impl ShardedSource {
    /// The production backend: one generator-replica thread per shard,
    /// each shipping its shard's filtered events over a bounded channel.
    ///
    /// `generators` must hold one *equally constructed* replica per shard
    /// of `map` (the caller builds them from the same workload + config, so
    /// they emit bit-identical global sequences).  Dropping the source
    /// early is safe: lanes hang up and the replicas run out cheaply into
    /// dead sinks, exactly like [`crate::source::ThreadedSource`].
    ///
    /// # Panics
    /// Panics if `generators.len() != map.shards()`.
    pub fn spawn(
        name: impl Into<String>,
        map: ShardMap,
        generators: Vec<Box<dyn StepGenerator>>,
    ) -> Self {
        assert_eq!(
            generators.len(),
            map.shards() as usize,
            "one generator replica per shard"
        );
        let lanes = generators
            .into_iter()
            .enumerate()
            .map(|(shard, mut generator)| {
                let (tx, rx) = mpsc::sync_channel(BATCH_BUFFER);
                let handle = std::thread::Builder::new()
                    .name(format!("trace-shard-{shard}"))
                    .spawn(move || {
                        let mut sink = ChannelSink::new(tx);
                        let mut filtered = FilterSink {
                            map,
                            shard: shard as u16,
                            inner: &mut sink,
                        };
                        while generator.step(&mut filtered) {}
                        sink.flush();
                    })
                    // dsm-lint: allow(panic-path, thread creation failure is an OS resource error not input-dependent; dying loudly beats simulating with missing shards)
                    .expect("spawn trace-shard thread");
                Lane::Thread {
                    rx: Some(rx),
                    handle: Some(handle),
                }
            })
            .collect();
        ShardedSource {
            name: name.into(),
            lanes,
            demux: Demux::new(map.topology()),
            map,
            pacing: Pacing::Free,
        }
    }

    /// The deterministic backend: every replica stays inline on the
    /// caller's thread, and lane progress is interleaved by a schedule
    /// scripted from `seed` — each demanded pump is preceded by a
    /// seed-chosen burst of *other* lanes' pumps.  Two sources built with
    /// the same arguments replay the same interleaving; different seeds
    /// explore different ones.  This is the backend the model-checking
    /// tests drive: per-processor streams (and any simulation consuming
    /// them) must be identical across every seed and to the threaded
    /// backend.
    ///
    /// # Panics
    /// Panics if `generators.len() != map.shards()`.
    pub fn lockstep(
        name: impl Into<String>,
        map: ShardMap,
        generators: Vec<Box<dyn StepGenerator>>,
        seed: u64,
    ) -> Self {
        assert_eq!(
            generators.len(),
            map.shards() as usize,
            "one generator replica per shard"
        );
        ShardedSource {
            name: name.into(),
            lanes: generators
                .into_iter()
                .map(|g| Lane::Lockstep { generator: Some(g) })
                .collect(),
            demux: Demux::new(map.topology()),
            map,
            pacing: Pacing::Seeded(Schedule(seed)),
        }
    }

    /// The exhaustive-exploration backend: like
    /// [`ShardedSource::lockstep`], but the interleaving is one explicit
    /// [`PumpScript`] instead of a seeded burst schedule, so a test can
    /// enumerate *every* script at small depth ([`ShardedSource::explore`])
    /// and prove the merged result identical across all of them.
    ///
    /// # Panics
    /// Panics if `generators.len() != map.shards()` or a script offset is
    /// `>= map.shards()`.
    pub fn scripted(
        name: impl Into<String>,
        map: ShardMap,
        generators: Vec<Box<dyn StepGenerator>>,
        script: PumpScript,
    ) -> Self {
        assert_eq!(
            generators.len(),
            map.shards() as usize,
            "one generator replica per shard"
        );
        assert!(
            script.offsets.iter().all(|&k| k < map.shards()),
            "script offsets must be < shard count"
        );
        ShardedSource {
            name: name.into(),
            lanes: generators
                .into_iter()
                .map(|g| Lane::Lockstep { generator: Some(g) })
                .collect(),
            demux: Demux::new(map.topology()),
            map,
            pacing: Pacing::Scripted {
                offsets: script.offsets,
                pos: 0,
            },
        }
    }

    /// Every [`PumpScript`] of length `depth` over `shards` lanes —
    /// `shards^depth` scripts, covering each reachable cross-lane push
    /// ordering at the first `depth` demand points (see [`PumpScript`] for
    /// why offset `0` canonically absorbs the same-lane pre-pump class).
    ///
    /// # Panics
    /// Panics if the space exceeds 1,048,576 scripts — exhaustion is a
    /// small-depth proof technique; past that, use the seeded sweep.
    pub fn explore(shards: u16, depth: usize) -> Vec<PumpScript> {
        assert!(shards >= 1, "explore needs at least one shard");
        let count = (shards as u64)
            .checked_pow(depth as u32)
            .filter(|&n| n <= 1 << 20)
            .expect("interleaving space too large to exhaust; use the seeded lockstep sweep");
        let mut scripts = Vec::with_capacity(count as usize);
        let mut offsets = vec![0u16; depth];
        loop {
            scripts.push(PumpScript {
                offsets: offsets.clone(),
            });
            // Odometer increment, least-significant position first.
            let Some(i) = (0..depth).find(|&i| offsets[i] + 1 < shards) else {
                break;
            };
            offsets[i] += 1;
            for o in &mut offsets[..i] {
                *o = 0;
            }
        }
        debug_assert_eq!(scripts.len() as u64, count);
        scripts
    }

    /// The shard partition feeding this source.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Replace the parked-event window cap (default
    /// [`crate::source::default_window_cap`] for the source's topology).
    pub fn with_window_cap(mut self, cap: usize) -> Self {
        self.demux.set_window_cap(cap);
        self
    }

    /// Mark every processor of `shard` ended (its lane's underlying stream
    /// is over).  A backstop — well-formed replicas already emitted every
    /// per-processor end marker by then.
    fn end_shard(demux: &mut Demux, map: &ShardMap, shard: u16) {
        for p in map.procs_of(shard) {
            demux.end(p);
        }
    }

    /// Progress `shard`'s lane by one unit (one channel chunk or one
    /// generator step).  Returns `false` once the lane is finished or the
    /// demux poisoned itself.  Propagates a replica-thread panic.
    fn pump_lane(&mut self, shard: u16) -> bool {
        let s = shard as usize;
        match &mut self.lanes[s] {
            Lane::Thread { rx, handle } => {
                let Some(receiver) = rx else { return false };
                match receiver.recv() {
                    Ok(chunk) => {
                        match chunk {
                            Chunk::Events(batch) => {
                                for (p, ev) in batch {
                                    self.demux.push(ProcId(p), ev);
                                }
                            }
                            Chunk::EndOfStream(p) => self.demux.end(ProcId(p)),
                        }
                        if self.demux.is_poisoned() {
                            // Hang up every lane; the replicas run out into
                            // dead sinks.
                            for lane in &mut self.lanes {
                                if let Lane::Thread { rx, .. } = lane {
                                    *rx = None;
                                }
                            }
                            return false;
                        }
                        true
                    }
                    Err(_) => {
                        *rx = None;
                        Self::end_shard(&mut self.demux, &self.map, shard);
                        if let Some(handle) = handle.take() {
                            if let Err(panic) = handle.join() {
                                std::panic::resume_unwind(panic);
                            }
                        }
                        false
                    }
                }
            }
            Lane::Lockstep { generator } => {
                let Some(g) = generator else { return false };
                let mut sink = DemuxSink(&mut self.demux);
                let more = g.step(&mut FilterSink {
                    map: self.map,
                    shard,
                    inner: &mut sink,
                });
                if !more {
                    *generator = None;
                    Self::end_shard(&mut self.demux, &self.map, shard);
                } else if self.demux.is_poisoned() {
                    *generator = None;
                }
                more && !self.demux.is_poisoned()
            }
        }
    }

    /// Pump toward `shard` having something to say, running the scripted
    /// interleaving first on the lockstep backends.
    fn pump(&mut self, shard: u16) -> bool {
        let shards = self.map.shards();
        // Decide the scripted pre-pumps first (ends the pacing borrow),
        // then run them.  `Vec::new` doesn't allocate, so the threaded
        // production path stays free of any per-pump cost.
        let pre: Vec<u16> = match &mut self.pacing {
            Pacing::Free => Vec::new(),
            Pacing::Seeded(schedule) if shards > 1 => {
                // Adversarially advance a seed-chosen burst of other lanes
                // before the demanded one.  Determinism of the *consumer's*
                // per-processor streams must survive any such schedule.
                let burst = (schedule.next() % (2 * shards as u64)) as u16;
                (0..burst)
                    .map(|_| (schedule.next() % shards as u64) as u16)
                    .filter(|&other| other != shard)
                    .collect()
            }
            Pacing::Seeded(_) => Vec::new(),
            Pacing::Scripted { offsets, pos } => {
                // One explicit overtake per demand point: offset k advances
                // lane (shard + k) % shards first; k = 0 is demand order
                // (the same-lane pre-pump commutes with the demand).
                match offsets.get(*pos) {
                    Some(&k) => {
                        *pos += 1;
                        if k != 0 {
                            vec![(shard + k) % shards]
                        } else {
                            Vec::new()
                        }
                    }
                    None => Vec::new(),
                }
            }
        };
        for other in pre {
            self.pump_lane(other);
        }
        self.pump_lane(shard)
    }
}

impl TraceSource for ShardedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn topology(&self) -> Topology {
        self.map.topology()
    }

    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        let shard = self.map.shard_of_proc(proc);
        loop {
            if let Some(ev) = self.demux.pop(proc) {
                return Some(ev);
            }
            if self.demux.is_ended(proc) || !self.pump(shard) {
                return None;
            }
        }
    }

    fn exhausted(&mut self, proc: ProcId) -> bool {
        let shard = self.map.shard_of_proc(proc);
        loop {
            if self.demux.has_buffered(proc) {
                return false;
            }
            if self.demux.is_ended(proc) || !self.pump(shard) {
                return true;
            }
        }
    }

    /// Burst pull: pump `proc`'s shard lane only until a first event is
    /// available (the same lane-pump sequence one `next_event` performs —
    /// including any scripted adversarial pumps of other lanes), then
    /// drain what the demux already parked for `proc`.
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        let shard = self.map.shard_of_proc(proc);
        loop {
            let n = self.demux.pop_burst(proc, out, max);
            if n > 0 {
                return n;
            }
            if self.demux.is_ended(proc) || !self.pump(shard) {
                return 0;
            }
        }
    }

    fn stats_so_far(&self) -> TraceStats {
        self.demux.stats()
    }

    fn buffered_events(&self) -> usize {
        self.demux.buffered_events()
    }

    fn take_error(&mut self) -> Option<TraceError> {
        self.demux.take_error()
    }
}

/// A [`StepGenerator`] replaying materialized per-processor streams in fair
/// round-robin order — the replica shape tests use (mirrors the private
/// fallback stepper in `splash-workloads`).
#[doc(hidden)]
pub struct ReplayStepper {
    per_proc: Vec<VecDeque<TraceEvent>>,
    next: usize,
}

impl ReplayStepper {
    /// Wrap materialized streams (one per processor).
    pub fn new(per_proc: Vec<Vec<TraceEvent>>) -> Self {
        ReplayStepper {
            per_proc: per_proc.into_iter().map(VecDeque::from).collect(),
            next: 0,
        }
    }
}

impl StepGenerator for ReplayStepper {
    fn step(&mut self, sink: &mut dyn EventSink) -> bool {
        let procs = self.per_proc.len();
        for _ in 0..procs {
            let p = self.next;
            self.next = (self.next + 1) % procs;
            if let Some(ev) = self.per_proc[p].pop_front() {
                sink.event(ProcId(p as u16), ev);
                if self.per_proc[p].is_empty() {
                    sink.end_of_stream(ProcId(p as u16));
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::GlobalAddr;
    use crate::builder::TraceBuilder;
    use crate::source::BATCH_EVENTS;
    use crate::trace::ProgramTrace;

    /// A 4-node / 2-proc trace with cross-node sharing, barriers and locks.
    fn toy_trace() -> ProgramTrace {
        let topo = Topology::new(4, 2);
        let mut b = TraceBuilder::new("toy", topo).with_think_cycles(3);
        for round in 0u64..5 {
            for p in topo.proc_ids() {
                b.read(p, GlobalAddr(round * 4096));
                b.write(p, GlobalAddr(64 * p.0 as u64 + round * 8192));
            }
            b.barrier_all();
        }
        b.lock(ProcId(5), 1);
        b.unlock(ProcId(5), 1);
        b.build()
    }

    fn replicas(trace: &ProgramTrace, shards: u16) -> Vec<Box<dyn StepGenerator>> {
        (0..shards)
            .map(|_| Box::new(ReplayStepper::new(trace.per_proc.clone())) as Box<dyn StepGenerator>)
            .collect()
    }

    fn drain_per_proc(src: &mut dyn TraceSource) -> Vec<Vec<TraceEvent>> {
        let topo = src.topology();
        topo.proc_ids()
            .map(|p| {
                let mut got = Vec::new();
                while let Some(ev) = src.next_event(p) {
                    got.push(ev);
                }
                got
            })
            .collect()
    }

    #[test]
    fn threaded_lanes_reproduce_the_trace_at_any_shard_count() {
        let trace = toy_trace();
        for workers in [1usize, 2, 3, 4, 9] {
            let map = ShardMap::new(trace.topology, workers);
            let mut src = ShardedSource::spawn("toy", map, replicas(&trace, map.shards()));
            assert_eq!(src.name(), "toy");
            assert_eq!(src.topology(), trace.topology);
            let got = drain_per_proc(&mut src);
            assert_eq!(got, trace.per_proc, "{workers} workers");
            for p in trace.topology.proc_ids() {
                assert!(src.exhausted(p));
            }
            assert_eq!(src.stats_so_far(), trace.stats());
            assert!(src.take_error().is_none());
        }
    }

    #[test]
    fn lockstep_streams_are_identical_across_seeds_and_pull_orders() {
        let trace = toy_trace();
        let map = ShardMap::new(trace.topology, 4);
        let reference = {
            let mut src = ShardedSource::lockstep("toy", map, replicas(&trace, 4), 0);
            drain_per_proc(&mut src)
        };
        assert_eq!(reference, trace.per_proc);
        for seed in 1..24u64 {
            let mut src = ShardedSource::lockstep("toy", map, replicas(&trace, 4), seed);
            // Adversarial pull order on odd seeds: highest proc first.
            let got = if seed % 2 == 1 {
                let mut per: Vec<Vec<TraceEvent>> = vec![Vec::new(); trace.topology.total_procs()];
                for p in trace.topology.proc_ids().collect::<Vec<_>>().iter().rev() {
                    while let Some(ev) = src.next_event(*p) {
                        per[p.index()].push(ev);
                    }
                }
                per
            } else {
                drain_per_proc(&mut src)
            };
            assert_eq!(got, reference, "seed {seed} perturbed a stream");
            assert_eq!(src.stats_so_far(), trace.stats());
        }
    }

    #[test]
    fn explore_enumerates_the_full_script_space() {
        assert_eq!(
            ShardedSource::explore(1, 4).len(),
            1,
            "one lane: demand order only"
        );
        assert_eq!(
            ShardedSource::explore(3, 0),
            vec![PumpScript::demand_order()]
        );
        let scripts = ShardedSource::explore(3, 4);
        assert_eq!(scripts.len(), 81);
        // All distinct, all in-range, and the identity script is included.
        for (i, a) in scripts.iter().enumerate() {
            assert_eq!(a.len(), 4);
            assert!(a.offsets().iter().all(|&k| k < 3));
            assert!(scripts[i + 1..].iter().all(|b| b != a), "duplicate script");
        }
        assert!(scripts.contains(&PumpScript::new(vec![0; 4])));
        assert!(scripts.contains(&PumpScript::new(vec![2, 2, 2, 2])));
    }

    #[test]
    #[should_panic(expected = "too large to exhaust")]
    fn explore_refuses_unexhaustible_spaces() {
        let _ = ShardedSource::explore(8, 20);
    }

    #[test]
    fn every_scripted_interleaving_reproduces_the_streams() {
        // The exhaustive form of the seeded test above: all 4^3 = 64
        // scripts at depth 3 over 4 lanes, each against both pull orders.
        let trace = toy_trace();
        let map = ShardMap::new(trace.topology, 4);
        let procs_rev: Vec<ProcId> = {
            let mut p: Vec<ProcId> = trace.topology.proc_ids().collect();
            p.reverse();
            p
        };
        for script in ShardedSource::explore(map.shards(), 3) {
            let mut src = ShardedSource::scripted("toy", map, replicas(&trace, 4), script.clone());
            let got = drain_per_proc(&mut src);
            assert_eq!(got, trace.per_proc, "script {script:?} perturbed a stream");
            assert_eq!(src.stats_so_far(), trace.stats());

            let mut src = ShardedSource::scripted("toy", map, replicas(&trace, 4), script.clone());
            let mut per: Vec<Vec<TraceEvent>> = vec![Vec::new(); trace.topology.total_procs()];
            for &p in &procs_rev {
                while let Some(ev) = src.next_event(p) {
                    per[p.index()].push(ev);
                }
            }
            assert_eq!(
                per, trace.per_proc,
                "script {script:?} under reversed pulls"
            );
        }
    }

    #[test]
    fn scripted_offsets_are_validated() {
        let trace = toy_trace();
        let map = ShardMap::new(trace.topology, 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ShardedSource::scripted("toy", map, replicas(&trace, 2), PumpScript::new(vec![2]))
        }));
        assert!(r.is_err(), "offset 2 with 2 shards must be rejected");
    }

    #[test]
    fn pulling_one_shard_does_not_buffer_other_shards_events() {
        // The decoupling property the per-shard lanes exist for: draining
        // shard 0 completely must not park shard 1's whole stream (with one
        // shared channel it would).
        let topo = Topology::new(2, 1);
        let mut per_proc = vec![Vec::new(), Vec::new()];
        for i in 0..50_000u64 {
            per_proc[0].push(TraceEvent::read(GlobalAddr(i * 64)));
            per_proc[1].push(TraceEvent::read(GlobalAddr(i * 64 + 4096)));
        }
        let trace = ProgramTrace::new("wide", topo, per_proc);
        let map = ShardMap::new(topo, 2);
        let mut src = ShardedSource::spawn("wide", map, replicas(&trace, 2));
        let mut got = 0usize;
        while src.next_event(ProcId(0)).is_some() {
            got += 1;
        }
        assert_eq!(got, 50_000);
        assert!(
            src.buffered_events() <= 2 * BATCH_EVENTS,
            "draining shard 0 parked {} events of shard 1",
            src.buffered_events()
        );
    }

    #[test]
    fn window_cap_poisons_instead_of_growing() {
        struct Endless(u64);
        impl StepGenerator for Endless {
            fn step(&mut self, sink: &mut dyn EventSink) -> bool {
                sink.event(ProcId(0), TraceEvent::read(GlobalAddr(self.0 * 64)));
                self.0 += 1;
                true
            }
        }
        let topo = Topology::new(2, 1);
        let map = ShardMap::new(topo, 2);
        // Proc 1's lane never produces (its replica only emits proc 0,
        // which the filter discards), so pulling proc 1 pumps forever...
        // except lane 1 emits nothing at all, so next_event(1) blocks on an
        // empty lane.  Pull proc 0 against a capped window instead: shard 0
        // floods proc 0's buffer only when proc 0 is pulled, so cap-trip
        // needs the single-shard shape.
        let map1 = ShardMap::new(topo, 1);
        let _ = map;
        let gens: Vec<Box<dyn StepGenerator>> = vec![Box::new(Endless(0))];
        let mut src = ShardedSource::spawn("endless", map1, gens).with_window_cap(1_000);
        assert!(src.next_event(ProcId(1)).is_none());
        assert!(src.buffered_events() <= 1_000);
        match src.take_error() {
            Some(TraceError::StreamWindowExceeded { cap, .. }) => assert_eq!(cap, 1_000),
            other => panic!("expected StreamWindowExceeded, got {other:?}"),
        }
        assert!(src.exhausted(ProcId(0)));
    }

    #[test]
    #[should_panic(expected = "replica exploded")]
    fn replica_panic_propagates_to_the_consumer() {
        struct Bomb;
        impl StepGenerator for Bomb {
            fn step(&mut self, sink: &mut dyn EventSink) -> bool {
                sink.event(ProcId(0), TraceEvent::read(GlobalAddr(0)));
                panic!("replica exploded");
            }
        }
        let topo = Topology::new(1, 1);
        let map = ShardMap::new(topo, 1);
        let mut src = ShardedSource::spawn("bad", map, vec![Box::new(Bomb)]);
        while src.next_event(ProcId(0)).is_some() {}
    }

    #[test]
    fn early_drop_winds_lanes_down() {
        let trace = toy_trace();
        let map = ShardMap::new(trace.topology, 4);
        let mut src = ShardedSource::spawn("toy", map, replicas(&trace, 4));
        assert!(src.next_event(ProcId(0)).is_some());
        drop(src);
    }
}
