//! Seekless file-backed trace record/replay.
//!
//! A recorded trace is a single forward-written, forward-read binary file —
//! no seeking, no index — so traces can be recorded straight out of a
//! streaming generator and replayed with bounded memory:
//!
//! ```text
//! header:  magic "DSMTRC01" | name_len u32 | name bytes (UTF-8)
//!          | nodes u16 | procs_per_node u16
//! events:  repeated  proc u16 | tag u8 | payload
//!          tag 0 read   : addr u64      tag 3 barrier : id u32
//!          tag 1 write  : addr u64      tag 4 lock    : id u32
//!          tag 2 compute: cycles u32    tag 5 unlock  : id u32
//!          tag 6 end-of-stream (no payload; the processor emits nothing
//!                further — written the moment the recorder observes the
//!                stream end)
//! ```
//!
//! All integers are little-endian.  End of file is end of trace.
//!
//! [`record`] drains a [`TraceSource`] *round-robin* across processors
//! (one event per non-exhausted processor per sweep).  Only each
//! processor's own event order matters for replay correctness, and the
//! fair interleaving bounds [`ReplaySource`]'s demultiplexing buffers to
//! roughly one event per processor regardless of how the original
//! generator phased its emission.  The per-processor end markers let
//! replay answer "is this processor done?" without reading ahead, even
//! for traces whose processors finish at very different points.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::access::{MemRef, TraceEvent};
use crate::addr::{GlobalAddr, ProcId, Topology};
use crate::source::{Demux, TraceSource};
use crate::trace::{TraceError, TraceStats};

/// File magic: format name + version.
pub const TRACE_MAGIC: &[u8; 8] = b"DSMTRC01";

fn encode_event(out: &mut Vec<u8>, proc: u16, ev: &TraceEvent) {
    out.extend_from_slice(&proc.to_le_bytes());
    match ev {
        TraceEvent::Access(m) => {
            out.push(if m.kind.is_write() { 1 } else { 0 });
            out.extend_from_slice(&m.addr.0.to_le_bytes());
        }
        TraceEvent::Compute(c) => {
            out.push(2);
            out.extend_from_slice(&c.to_le_bytes());
        }
        TraceEvent::Barrier(id) => {
            out.push(3);
            out.extend_from_slice(&id.to_le_bytes());
        }
        TraceEvent::Lock(id) => {
            out.push(4);
            out.extend_from_slice(&id.to_le_bytes());
        }
        TraceEvent::Unlock(id) => {
            out.push(5);
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
}

/// Drain `source` into `out` in the format above.
///
/// Processors are drained round-robin, one event per sweep, so the file's
/// interleaving is fair regardless of the source's own emission order.
pub fn record(source: &mut dyn TraceSource, out: &mut dyn Write) -> io::Result<()> {
    let topology = source.topology();
    let name = source.name().as_bytes().to_vec();
    out.write_all(TRACE_MAGIC)?;
    out.write_all(&(name.len() as u32).to_le_bytes())?;
    out.write_all(&name)?;
    out.write_all(&topology.nodes.to_le_bytes())?;
    out.write_all(&topology.procs_per_node.to_le_bytes())?;

    let procs = topology.total_procs();
    let mut live: Vec<bool> = vec![true; procs];
    let mut remaining = procs;
    let mut buf = Vec::with_capacity(16 * 1024);
    while remaining > 0 {
        for (p, alive) in live.iter_mut().enumerate() {
            if !*alive {
                continue;
            }
            match source.next_event(ProcId(p as u16)) {
                Some(ev) => encode_event(&mut buf, p as u16, &ev),
                None => {
                    // Explicit end-of-stream marker so replay never has to
                    // read ahead to learn a processor is done.
                    buf.extend_from_slice(&(p as u16).to_le_bytes());
                    buf.push(6);
                    *alive = false;
                    remaining -= 1;
                }
            }
        }
        if buf.len() >= 8 * 1024 {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    out.write_all(&buf)?;
    out.flush()
}

/// [`record`] into a freshly created (or truncated) file.
pub fn record_to_file(source: &mut dyn TraceSource, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    record(source, &mut w)
}

fn corrupt(detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt trace file: {detail}"),
    )
}

/// One demultiplexed record of a trace file.
enum Record {
    Event(u16, TraceEvent),
    EndOfStream(u16),
    EndOfFile,
}

/// A [`TraceSource`] replaying a recorded trace file.
///
/// The file is read strictly forward; events for processors other than the
/// one currently being pulled are parked in small per-processor queues.
/// With the fair interleaving [`record`] writes, those queues stay at about
/// one event per processor, and the per-processor end markers answer
/// exhaustion queries without reading ahead.
pub struct ReplaySource<R: Read> {
    name: String,
    topology: Topology,
    reader: Option<R>,
    demux: Demux,
}

impl ReplaySource<BufReader<File>> {
    /// Open a recorded trace file for replay.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::from_reader(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> ReplaySource<R> {
    /// Start replaying from any forward reader (header is parsed eagerly).
    pub fn from_reader(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != TRACE_MAGIC {
            return Err(corrupt(
                "bad magic (not a recorded trace, or wrong version)",
            ));
        }
        let mut len4 = [0u8; 4];
        reader.read_exact(&mut len4)?;
        let name_len = u32::from_le_bytes(len4) as usize;
        if name_len > 4096 {
            return Err(corrupt("unreasonable workload-name length"));
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| corrupt("workload name not UTF-8"))?;
        let mut n2 = [0u8; 2];
        reader.read_exact(&mut n2)?;
        let nodes = u16::from_le_bytes(n2);
        reader.read_exact(&mut n2)?;
        let procs_per_node = u16::from_le_bytes(n2);
        if nodes == 0 || procs_per_node == 0 {
            return Err(corrupt("topology with a zero dimension"));
        }
        // ProcIds are u16: anything past 65536 processors cannot appear in
        // event records, so a bigger header is corruption — reject it before
        // sizing the demux by it.
        if nodes as u64 * procs_per_node as u64 > u64::from(u16::MAX) + 1 {
            return Err(corrupt("topology larger than the processor id space"));
        }
        let topology = Topology::new(nodes, procs_per_node);
        Ok(ReplaySource {
            name,
            topology,
            reader: Some(reader),
            demux: Demux::new(topology),
        })
    }

    /// Replace the parked-event window cap (default
    /// [`crate::source::default_window_cap`] for the trace's topology).
    pub fn with_window_cap(mut self, cap: usize) -> Self {
        self.demux.set_window_cap(cap);
        self
    }

    /// Read one record.
    fn read_record(reader: &mut R) -> io::Result<Record> {
        let mut head = [0u8; 3];
        // Distinguish clean EOF (no bytes of a record) from truncation.
        let n = reader.read(&mut head[..1])?;
        if n == 0 {
            return Ok(Record::EndOfFile);
        }
        reader.read_exact(&mut head[1..])?;
        let proc = u16::from_le_bytes([head[0], head[1]]);
        let tag = head[2];
        let ev = match tag {
            0 | 1 => {
                let mut b = [0u8; 8];
                reader.read_exact(&mut b)?;
                let addr = GlobalAddr(u64::from_le_bytes(b));
                if tag == 1 {
                    TraceEvent::Access(MemRef::write(addr))
                } else {
                    TraceEvent::Access(MemRef::read(addr))
                }
            }
            2..=5 => {
                let mut b = [0u8; 4];
                reader.read_exact(&mut b)?;
                let v = u32::from_le_bytes(b);
                match tag {
                    2 => TraceEvent::Compute(v),
                    3 => TraceEvent::Barrier(v),
                    4 => TraceEvent::Lock(v),
                    _ => TraceEvent::Unlock(v),
                }
            }
            6 => return Ok(Record::EndOfStream(proc)),
            _ => return Err(corrupt("unknown event tag")),
        };
        Ok(Record::Event(proc, ev))
    }

    /// Advance the file by one record into the demux buffers.  Returns
    /// `false` at end of file.
    ///
    /// # Panics
    /// Panics if the file is truncated or corrupt past the header — the
    /// format is self-produced, so this indicates a damaged file, and the
    /// pull-based [`TraceSource`] API has no error channel.
    fn pump(&mut self) -> bool {
        let Some(reader) = &mut self.reader else {
            return false;
        };
        let procs = self.topology.total_procs();
        match Self::read_record(reader) {
            Ok(Record::Event(p, ev)) if (p as usize) < procs => {
                self.demux.push(ProcId(p), ev);
                if self.demux.is_poisoned() {
                    self.reader = None;
                    return false;
                }
                true
            }
            Ok(Record::EndOfStream(p)) if (p as usize) < procs => {
                self.demux.end(ProcId(p));
                true
            }
            Ok(Record::Event(p, _)) | Ok(Record::EndOfStream(p)) => {
                // dsm-lint: allow(panic-path, TraceSource::next_event has no error channel; corrupt replay files are CLI operator input — the service cannot construct Replay workloads — and fail fast by design)
                panic!("corrupt trace file: record for processor {p} outside the topology");
            }
            Ok(Record::EndOfFile) => {
                self.reader = None;
                self.demux.end_all();
                false
            }
            // dsm-lint: allow(panic-path, TraceSource::next_event has no error channel; corrupt replay files are CLI operator input — the service cannot construct Replay workloads — and fail fast by design)
            Err(e) => panic!("replaying trace {}: {e}", self.name),
        }
    }
}

impl<R: Read> TraceSource for ReplaySource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn next_event(&mut self, proc: ProcId) -> Option<TraceEvent> {
        loop {
            if let Some(ev) = self.demux.pop(proc) {
                return Some(ev);
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return None;
            }
        }
    }

    fn exhausted(&mut self, proc: ProcId) -> bool {
        loop {
            if self.demux.has_buffered(proc) {
                return false;
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return true;
            }
        }
    }

    /// Burst pull: read records only until `proc` has a first event, then
    /// drain what the demux already parked for it (same contract as
    /// [`crate::FusedSource::next_burst`], file-fed).
    fn next_burst(&mut self, proc: ProcId, out: &mut Vec<TraceEvent>, max: usize) -> usize {
        loop {
            let n = self.demux.pop_burst(proc, out, max);
            if n > 0 {
                return n;
            }
            if self.demux.is_ended(proc) || !self.pump() {
                return 0;
            }
        }
    }

    fn stats_so_far(&self) -> TraceStats {
        self.demux.stats()
    }

    fn buffered_events(&self) -> usize {
        self.demux.buffered_events()
    }

    fn take_error(&mut self) -> Option<TraceError> {
        self.demux.take_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::trace::ProgramTrace;

    fn toy_trace() -> ProgramTrace {
        let topo = Topology::new(2, 2);
        let mut b = TraceBuilder::new("toy", topo).with_think_cycles(1);
        b.read(ProcId(0), GlobalAddr(0));
        b.write(ProcId(3), GlobalAddr(64));
        b.barrier_all();
        b.lock(ProcId(2), 5);
        b.compute(ProcId(2), 123);
        b.unlock(ProcId(2), 5);
        b.barrier_all();
        b.build()
    }

    #[test]
    fn record_replay_round_trips_every_event() {
        let trace = toy_trace();
        let mut bytes = Vec::new();
        record(&mut trace.source(), &mut bytes).unwrap();

        let mut replay = ReplaySource::from_reader(&bytes[..]).unwrap();
        assert_eq!(replay.name(), "toy");
        assert_eq!(replay.topology(), trace.topology);
        for p in trace.topology.proc_ids() {
            let mut got = Vec::new();
            while let Some(ev) = replay.next_event(p) {
                got.push(ev);
            }
            assert_eq!(got, trace.per_proc[p.index()], "stream of {p:?}");
            assert!(replay.exhausted(p));
        }
        assert_eq!(replay.stats_so_far(), trace.stats());
    }

    #[test]
    fn replay_supports_adversarial_pull_order() {
        let trace = toy_trace();
        let mut bytes = Vec::new();
        record(&mut trace.source(), &mut bytes).unwrap();
        let mut replay = ReplaySource::from_reader(&bytes[..]).unwrap();
        // Pull the *last* processor first: demux must park other procs'
        // events without losing them.
        let mut got3 = Vec::new();
        while let Some(ev) = replay.next_event(ProcId(3)) {
            got3.push(ev);
        }
        assert_eq!(got3, trace.per_proc[3]);
        assert!(!replay.exhausted(ProcId(0)));
        let mut got0 = Vec::new();
        while let Some(ev) = replay.next_event(ProcId(0)) {
            got0.push(ev);
        }
        assert_eq!(got0, trace.per_proc[0]);
    }

    #[test]
    fn end_markers_answer_exhaustion_without_reading_ahead() {
        // Proc 1 emits one event and stops; proc 0 keeps going for 1000
        // more.  The recorded end marker for proc 1 lands within the first
        // few records (round-robin), so draining proc 1 and asking if it is
        // exhausted must NOT force the rest of the file through the demux.
        let topo = Topology::new(2, 1);
        let mut b = TraceBuilder::new("uneven", topo);
        b.read(ProcId(1), GlobalAddr(0));
        for i in 0..1000u64 {
            b.read(ProcId(0), GlobalAddr(i * 64));
        }
        let trace = b.build();
        let mut bytes = Vec::new();
        record(&mut trace.source(), &mut bytes).unwrap();

        let mut replay = ReplaySource::from_reader(&bytes[..]).unwrap();
        assert!(replay.next_event(ProcId(1)).is_some());
        assert!(replay.next_event(ProcId(1)).is_none());
        assert!(replay.exhausted(ProcId(1)));
        // Only the handful of records up to proc 1's end marker were read
        // (stats count *pulled* events, so the parked window is what proves
        // nothing was read ahead).
        assert!(
            replay.buffered_events() < 10,
            "exhaustion query dragged the whole file through the demux: {} parked",
            replay.buffered_events()
        );
        // The rest still replays intact.
        let mut got0 = 0usize;
        while replay.next_event(ProcId(0)).is_some() {
            got0 += 1;
        }
        assert_eq!(got0, trace.per_proc[0].len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"NOTATRACE_______".to_vec();
        assert!(ReplaySource::from_reader(&bytes[..]).is_err());
    }

    #[test]
    fn oversized_topology_header_is_rejected() {
        // Valid magic and name, then a corrupt topology of 65535x65535
        // processors: must be rejected at open, not allocated.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(TRACE_MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(b"xx");
        bytes.extend_from_slice(&u16::MAX.to_le_bytes());
        bytes.extend_from_slice(&u16::MAX.to_le_bytes());
        let err = match ReplaySource::from_reader(&bytes[..]) {
            Err(e) => e,
            Ok(_) => panic!("oversized topology accepted"),
        };
        assert!(err.to_string().contains("processor id space"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let trace = toy_trace();
        let path = std::env::temp_dir().join("dsm-repro-replay-test.trc");
        record_to_file(&mut trace.source(), &path).unwrap();
        let mut replay = ReplaySource::open(&path).unwrap();
        let mut events = 0usize;
        for p in trace.topology.proc_ids() {
            while replay.next_event(p).is_some() {
                events += 1;
            }
        }
        assert_eq!(events, trace.total_events());
        std::fs::remove_file(&path).ok();
    }
}
