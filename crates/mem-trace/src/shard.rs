//! Partitioning a cluster topology into shards.
//!
//! A *shard* is a contiguous range of home nodes — together with their
//! processors, directories, page caches and policy tables — owned by one
//! worker of a sharded simulation.  [`ShardMap`] is the single source of
//! truth for that partition: the sharded trace source
//! ([`crate::sharded::ShardedSource`]) uses it to split per-processor
//! event supply across generator replicas, and the sharded simulator uses
//! the same map to route scheduler wakeups through per-shard-pair queues.
//! Both sides deriving their ownership from one map is what makes the
//! split reproducible: a processor's events and its wakeups always live
//! in the same shard.
//!
//! The partition is the standard balanced contiguous split: shard `s` of
//! `S` owns nodes `[s*N/S, (s+1)*N/S)`, so shard sizes differ by at most
//! one node and node order (and therefore proc-id order inside a shard)
//! is preserved.  The map is pure arithmetic — cloning it is free and two
//! maps constructed from the same `(topology, workers)` agree on every
//! assignment, on every thread, in every process.

use crate::addr::{NodeId, ProcId, Topology};

/// A contiguous partition of a cluster's nodes into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    topology: Topology,
    shards: u16,
}

impl ShardMap {
    /// Partition `topology` into at most `workers` shards.
    ///
    /// The shard count is clamped to `[1, topology.nodes]`: a shard owns
    /// whole nodes (an SMP node's processors share caches and a bus, so
    /// splitting one across workers would split state that is not
    /// partitionable), and zero workers means "one shard" rather than an
    /// error so `workers = 0` can safely encode "auto" upstream.
    pub fn new(topology: Topology, workers: usize) -> Self {
        let shards = workers.clamp(1, topology.nodes as usize) as u16;
        ShardMap { topology, shards }
    }

    /// The partitioned topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of shards (at least 1, at most the node count).
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard owning `node`.
    #[inline]
    pub fn shard_of_node(&self, node: NodeId) -> u16 {
        // Exact inverse of `nodes_of`: node `n` lands in the shard whose
        // `lo = floor(s*N/S)` range covers it, i.e. `floor((n*S+S-1)/N)`.
        let n = self.topology.nodes as usize;
        let s = self.shards as usize;
        ((node.0 as usize * s + s - 1) / n) as u16
    }

    /// The shard owning `proc`'s home node.
    #[inline]
    pub fn shard_of_proc(&self, proc: ProcId) -> u16 {
        self.shard_of_node(self.topology.node_of(proc))
    }

    /// The contiguous node range shard `shard` owns.
    pub fn nodes_of(&self, shard: u16) -> std::ops::Range<u16> {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        let n = self.topology.nodes as usize;
        let s = self.shards as usize;
        let lo = (shard as usize * n) / s;
        let hi = ((shard as usize + 1) * n) / s;
        lo as u16..hi as u16
    }

    /// The processors shard `shard` owns, in proc-id order.
    pub fn procs_of(&self, shard: u16) -> impl Iterator<Item = ProcId> {
        let nodes = self.nodes_of(shard);
        let ppn = self.topology.procs_per_node;
        (nodes.start * ppn..nodes.end * ppn).map(ProcId)
    }

    /// The proc-indexed shard table (`table[proc.index()]` = owning
    /// shard), the flat form the scheduler layer consumes.
    pub fn proc_table(&self) -> Vec<u16> {
        self.topology
            .proc_ids()
            .map(|p| self.shard_of_proc(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_balanced_and_total() {
        for nodes in [1u16, 2, 3, 8, 17, 96] {
            for workers in [1usize, 2, 3, 4, 7, 8, 200] {
                let map = ShardMap::new(Topology::new(nodes, 3), workers);
                assert!(map.shards() >= 1 && map.shards() <= nodes);
                // Ranges tile the node space in order.
                let mut next = 0u16;
                let (mut min_size, mut max_size) = (u16::MAX, 0u16);
                for s in 0..map.shards() {
                    let r = map.nodes_of(s);
                    assert_eq!(r.start, next, "gap before shard {s}");
                    assert!(r.end > r.start, "empty shard {s}");
                    min_size = min_size.min(r.end - r.start);
                    max_size = max_size.max(r.end - r.start);
                    for n in r.clone() {
                        assert_eq!(map.shard_of_node(NodeId(n)), s);
                    }
                    next = r.end;
                }
                assert_eq!(next, nodes, "shards do not cover all nodes");
                assert!(max_size - min_size <= 1, "unbalanced partition");
            }
        }
    }

    #[test]
    fn procs_follow_their_home_node() {
        let map = ShardMap::new(Topology::new(8, 4), 3);
        let topo = map.topology();
        for p in topo.proc_ids() {
            assert_eq!(map.shard_of_proc(p), map.shard_of_node(topo.node_of(p)));
        }
        // procs_of agrees with shard_of_proc, covers every proc exactly once.
        let mut seen = vec![false; topo.total_procs()];
        for s in 0..map.shards() {
            for p in map.procs_of(s) {
                assert_eq!(map.shard_of_proc(p), s);
                assert!(!seen[p.index()], "proc {p} assigned twice");
                seen[p.index()] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn proc_table_matches_the_map_and_workers_clamp() {
        let topo = Topology::new(8, 4);
        let map = ShardMap::new(topo, 5);
        let table = map.proc_table();
        assert_eq!(table.len(), topo.total_procs());
        for p in topo.proc_ids() {
            assert_eq!(table[p.index()], map.shard_of_proc(p));
        }
        // workers = 0 means one shard; workers > nodes clamps to nodes.
        assert_eq!(ShardMap::new(topo, 0).shards(), 1);
        assert_eq!(ShardMap::new(topo, 64).shards(), 8);
    }
}
