//! Memory references and per-processor trace events.

use crate::addr::{BlockId, GlobalAddr, PageId};
use serde::{Deserialize, Serialize};

/// Whether a memory reference reads or writes shared data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load from shared memory.
    Read,
    /// A store to shared memory.
    Write,
}

impl AccessKind {
    /// `true` for writes.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A single shared-memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Target byte address in the global shared address space.
    pub addr: GlobalAddr,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemRef {
    /// A read of `addr`.
    #[inline]
    pub fn read(addr: GlobalAddr) -> Self {
        MemRef {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A write to `addr`.
    #[inline]
    pub fn write(addr: GlobalAddr) -> Self {
        MemRef {
            addr,
            kind: AccessKind::Write,
        }
    }

    /// The cache block this reference touches.
    #[inline]
    pub fn block(&self) -> BlockId {
        self.addr.block()
    }

    /// The page this reference touches.
    #[inline]
    pub fn page(&self) -> PageId {
        self.addr.page()
    }
}

/// One event in a processor's trace.
///
/// Traces are an abstraction of the instruction stream: shared-memory
/// references are explicit, all other work (private data accesses that hit
/// in the L1, ALU work) is folded into `Compute` delays, and synchronization
/// is expressed with named barriers and locks exactly as the PARMACS macros
/// of SPLASH-2 would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A shared-memory read or write.
    Access(MemRef),
    /// Local computation consuming the given number of processor cycles.
    Compute(u32),
    /// Global barrier with an identifier; all processors must emit barriers
    /// with identical ids in identical order.
    Barrier(u32),
    /// Acquire the lock with the given id (spin until free).
    Lock(u32),
    /// Release the lock with the given id.
    Unlock(u32),
}

impl TraceEvent {
    /// Read of `addr`.
    #[inline]
    pub fn read(addr: GlobalAddr) -> Self {
        TraceEvent::Access(MemRef::read(addr))
    }

    /// Write to `addr`.
    #[inline]
    pub fn write(addr: GlobalAddr) -> Self {
        TraceEvent::Access(MemRef::write(addr))
    }

    /// `true` if this is a shared-memory access.
    #[inline]
    pub fn is_access(&self) -> bool {
        matches!(self, TraceEvent::Access(_))
    }

    /// `true` if this is a synchronization event (barrier, lock or unlock).
    #[inline]
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            TraceEvent::Barrier(_) | TraceEvent::Lock(_) | TraceEvent::Unlock(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{BLOCK_SIZE, PAGE_SIZE};

    #[test]
    fn memref_helpers() {
        let r = MemRef::read(GlobalAddr(PAGE_SIZE + BLOCK_SIZE));
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.kind.is_write());
        assert_eq!(r.page(), PageId(1));
        assert_eq!(r.block().index_in_page(), 1);

        let w = MemRef::write(GlobalAddr(0));
        assert!(w.kind.is_write());
    }

    #[test]
    fn event_classification() {
        assert!(TraceEvent::read(GlobalAddr(0)).is_access());
        assert!(TraceEvent::write(GlobalAddr(0)).is_access());
        assert!(!TraceEvent::Compute(10).is_access());
        assert!(TraceEvent::Barrier(0).is_sync());
        assert!(TraceEvent::Lock(1).is_sync());
        assert!(TraceEvent::Unlock(1).is_sync());
        assert!(!TraceEvent::Compute(1).is_sync());
    }
}
