//! Shared-segment allocation for workload generators.
//!
//! Workloads lay out their shared data structures (matrices, particle
//! arrays, key arrays, grids, ...) in the global address space exactly the
//! way the original SPLASH-2 programs would with `G_MALLOC`: each named
//! structure receives a page-aligned, contiguous range of bytes.  Page
//! alignment matters because every page-granularity mechanism in the paper
//! (first-touch, migration, replication, R-NUMA relocation) keys off which
//! data structure a page belongs to.

use crate::addr::{GlobalAddr, PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// A named, contiguous, page-aligned region of the global address space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Human-readable name (e.g. `"matrix"`, `"keys"`).
    pub name: String,
    /// First byte of the segment; always page-aligned.
    pub base: GlobalAddr,
    /// Size in bytes as requested by the workload.
    pub len: u64,
    /// Size of one element for index-based addressing.
    pub elem_size: u64,
}

impl Segment {
    /// Byte address of element `index`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the element lies outside the segment.
    #[inline]
    pub fn elem(&self, index: u64) -> GlobalAddr {
        let off = index * self.elem_size;
        debug_assert!(
            off + self.elem_size <= self.len.max(self.elem_size),
            "element {index} out of bounds in segment {}",
            self.name
        );
        GlobalAddr(self.base.0 + off)
    }

    /// Byte address of `(row, col)` in a row-major 2-D array of `cols`
    /// columns.
    #[inline]
    pub fn elem2(&self, row: u64, col: u64, cols: u64) -> GlobalAddr {
        self.elem(row * cols + col)
    }

    /// Number of whole elements the segment holds.
    #[inline]
    pub fn elements(&self) -> u64 {
        self.len / self.elem_size
    }

    /// First page of the segment.
    #[inline]
    pub fn first_page(&self) -> PageId {
        self.base.page()
    }

    /// Number of pages the segment spans.
    #[inline]
    pub fn pages(&self) -> u64 {
        self.len.div_ceil(PAGE_SIZE).max(1)
    }

    /// Iterate over every page the segment spans.
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> {
        let first = self.base.page().0;
        (first..first + self.pages()).map(PageId)
    }

    /// `true` if `addr` lies within the segment's allocated bytes.
    #[inline]
    pub fn contains(&self, addr: GlobalAddr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.base.0 + self.len
    }
}

/// A bump allocator over the global shared address space.
///
/// Allocation is deterministic: segments are laid out in the order they are
/// requested, each starting on a fresh page, mirroring how the SPLASH-2
/// programs allocate their major shared structures once at start-up.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AddressSpace {
    next_page: u64,
    segments: Vec<Segment>,
}

impl AddressSpace {
    /// An empty address space starting at page 0.
    pub fn new() -> Self {
        AddressSpace {
            next_page: 0,
            segments: Vec::new(),
        }
    }

    /// Allocate a segment of `count` elements of `elem_size` bytes each.
    ///
    /// # Panics
    /// Panics if `elem_size` or `count` is zero.
    pub fn alloc(&mut self, name: impl Into<String>, count: u64, elem_size: u64) -> Segment {
        assert!(elem_size > 0, "element size must be non-zero");
        assert!(count > 0, "segment must hold at least one element");
        let len = count * elem_size;
        let pages = len.div_ceil(PAGE_SIZE).max(1);
        let seg = Segment {
            name: name.into(),
            base: PageId(self.next_page).base_addr(),
            len,
            elem_size,
        };
        self.next_page += pages;
        self.segments.push(seg.clone());
        seg
    }

    /// Allocate raw bytes (element size 1).
    pub fn alloc_bytes(&mut self, name: impl Into<String>, bytes: u64) -> Segment {
        self.alloc(name, bytes, 1)
    }

    /// Total footprint in pages allocated so far.
    pub fn pages_allocated(&self) -> u64 {
        self.next_page
    }

    /// Total footprint in bytes (page-granular).
    pub fn bytes_allocated(&self) -> u64 {
        self.next_page * PAGE_SIZE
    }

    /// All segments allocated so far, in allocation order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Look up a segment by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// The segment (if any) containing `addr`.
    pub fn segment_of(&self, addr: GlobalAddr) -> Option<&Segment> {
        self.segments.iter().find(|s| s.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BLOCK_SIZE;

    #[test]
    fn segments_are_page_aligned_and_disjoint() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 100, 8);
        let b = space.alloc("b", 5000, 8); // spans multiple pages
        let c = space.alloc("c", 1, 1);
        for seg in [&a, &b, &c] {
            assert_eq!(
                seg.base.0 % PAGE_SIZE,
                0,
                "segment {} not aligned",
                seg.name
            );
        }
        assert!(a.base.0 + a.pages() * PAGE_SIZE <= b.base.0);
        assert!(b.base.0 + b.pages() * PAGE_SIZE <= c.base.0);
        assert_eq!(space.segments().len(), 3);
    }

    #[test]
    fn element_addressing() {
        let mut space = AddressSpace::new();
        let m = space.alloc("matrix", 16 * 16, 8);
        assert_eq!(m.elem(0), m.base);
        assert_eq!(m.elem(1).0, m.base.0 + 8);
        assert_eq!(m.elem2(2, 3, 16).0, m.base.0 + (2 * 16 + 3) * 8);
        assert_eq!(m.elements(), 256);
    }

    #[test]
    fn pages_and_contains() {
        let mut space = AddressSpace::new();
        let seg = space.alloc("grid", PAGE_SIZE / 4 + 10, 4); // a bit over one page
        assert_eq!(seg.pages(), 2);
        assert_eq!(seg.page_ids().count(), 2);
        assert!(seg.contains(seg.base));
        assert!(seg.contains(GlobalAddr(seg.base.0 + seg.len - 1)));
        assert!(!seg.contains(GlobalAddr(seg.base.0 + seg.len)));
    }

    #[test]
    fn footprint_accounting() {
        let mut space = AddressSpace::new();
        space.alloc("x", 1, 1);
        space.alloc("y", PAGE_SIZE * 3, 1);
        assert_eq!(space.pages_allocated(), 1 + 3);
        assert_eq!(space.bytes_allocated(), 4 * PAGE_SIZE);
    }

    #[test]
    fn lookup_by_name_and_address() {
        let mut space = AddressSpace::new();
        let keys = space.alloc("keys", 1024, 4);
        let _hist = space.alloc("hist", 256, 4);
        assert_eq!(space.segment("keys").unwrap().base, keys.base);
        assert!(space.segment("nope").is_none());
        let inside = GlobalAddr(keys.base.0 + 5 * BLOCK_SIZE);
        assert_eq!(space.segment_of(inside).unwrap().name, "keys");
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn zero_element_size_rejected() {
        AddressSpace::new().alloc("bad", 10, 0);
    }
}
