//! Dense interning of sparse page and block ids.
//!
//! The address space a workload touches is sparse: page numbers come from
//! wherever the layout allocator placed each segment, so they are useless as
//! direct array indices.  Everything downstream of the trace, however, only
//! ever cares about the *set* of touched pages — and that set is small and
//! grows monotonically.  [`PageInterner`] assigns each distinct [`PageId`] a
//! contiguous [`PageIdx`] (`0, 1, 2, …`) on first sight, after which every
//! layer of the memory system keys its per-page and per-block state by plain
//! `Vec` index instead of by hash:
//!
//! * one interner probe per memory reference replaces a hash-map lookup in
//!   every layer it feeds (page table, directory, caches, classifiers,
//!   policy counters);
//! * block indices are derived, not interned: a page's blocks occupy the
//!   contiguous index range `page_idx * BLOCKS_PER_PAGE ..`, so
//!   [`BlockIdx`] is computed with a shift and page-granular operations
//!   (flushes, purges) become 64-slot scans instead of whole-table walks.
//!
//! Because simulation is deterministic, first-touch order — and therefore
//! the id↔index assignment — is identical across runs of the same trace;
//! interning is invisible in any result.
//!
//! The probe table is a purpose-built open-addressed map (u64 → u32,
//! power-of-two capacity, multiplicative hashing, linear probing) rather
//! than a `std::collections::HashMap`: the interner sits on the per-access
//! hot path, where SipHash costs more than the rest of the lookup.

use crate::addr::{BlockId, Geometry, GlobalAddr, PageId, BLOCKS_PER_PAGE};
use std::fmt;

/// Dense index of an interned page (`0 ..` in first-touch order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageIdx(pub u32);

/// Dense index of a block of an interned page:
/// `page_idx * BLOCKS_PER_PAGE + index_in_page`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockIdx(pub u32);

impl PageIdx {
    /// Numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The dense index of this page's `offset`-th block.
    #[inline]
    pub fn block(self, offset: u64) -> BlockIdx {
        debug_assert!(offset < BLOCKS_PER_PAGE);
        BlockIdx(self.0 * BLOCKS_PER_PAGE as u32 + offset as u32)
    }

    /// Iterate over the dense indices of every block of this page.
    pub fn blocks(self) -> impl Iterator<Item = BlockIdx> {
        let first = self.0 * BLOCKS_PER_PAGE as u32;
        (first..first + BLOCKS_PER_PAGE as u32).map(BlockIdx)
    }
}

impl BlockIdx {
    /// Numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The dense index of the containing page.
    #[inline]
    pub fn page(self) -> PageIdx {
        PageIdx(self.0 / BLOCKS_PER_PAGE as u32)
    }

    /// Index of this block within its page (`0 .. BLOCKS_PER_PAGE`).
    #[inline]
    pub fn index_in_page(self) -> u64 {
        u64::from(self.0) % BLOCKS_PER_PAGE
    }
}

/// A page id together with its dense index — the currency of the simulator's
/// hot path.  The id is kept for the rare operations that must reconstruct
/// global addresses (network-visible page moves); everything state-keyed
/// uses the index.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PageRef {
    /// The sparse global page id.
    pub id: PageId,
    /// The dense interned index.
    pub idx: PageIdx,
}

/// A block id together with its dense index (see [`PageRef`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct BlockRef {
    /// The sparse global block id.
    pub id: BlockId,
    /// The dense derived index.
    pub idx: BlockIdx,
}

impl PageRef {
    /// Pair an id with its index.  The caller vouches the pairing came from
    /// an interner (or any other injective assignment).
    #[inline]
    pub fn new(id: PageId, idx: PageIdx) -> Self {
        PageRef { id, idx }
    }

    /// The [`BlockRef`] of `block`, which must belong to this page.
    #[inline]
    pub fn block(self, block: BlockId) -> BlockRef {
        debug_assert_eq!(block.page(), self.id);
        BlockRef {
            id: block,
            idx: self.idx.block(block.index_in_page()),
        }
    }

    /// The [`BlockRef`] of this page's `offset`-th block.
    #[inline]
    pub fn block_at(self, offset: u64) -> BlockRef {
        BlockRef {
            id: BlockId(self.id.first_block().0 + offset),
            idx: self.idx.block(offset),
        }
    }
}

impl BlockRef {
    /// Pair an id with its index (see [`PageRef::new`]).
    #[inline]
    pub fn new(id: BlockId, idx: BlockIdx) -> Self {
        BlockRef { id, idx }
    }

    /// Dense index of the containing page.
    #[inline]
    pub fn page_idx(self) -> PageIdx {
        self.idx.page()
    }
}

/// Geometry-aware dense-index derivation.  The inherent
/// [`PageIdx::block`]/[`BlockIdx::page`] methods assume the paper's
/// 64-blocks-per-page stride; layers that support page/block-size sweeps
/// derive indices through the machine's [`Geometry`] instead.  At
/// [`Geometry::PAPER`] both compute identical indices.
impl Geometry {
    /// The dense index of `page`'s `offset`-th block.
    #[inline]
    pub fn block_idx(self, page: PageIdx, offset: u64) -> BlockIdx {
        debug_assert!(offset < self.blocks_per_page());
        BlockIdx(page.0 * self.blocks_per_page() as u32 + offset as u32)
    }

    /// The dense index of the page containing dense block `block`.
    #[inline]
    pub fn page_of_block_idx(self, block: BlockIdx) -> PageIdx {
        PageIdx(block.0 / self.blocks_per_page() as u32)
    }

    /// Index of dense block `block` within its page.
    #[inline]
    pub fn index_in_page_idx(self, block: BlockIdx) -> u64 {
        u64::from(block.0) % self.blocks_per_page()
    }

    /// Iterate over the dense indices of every block of `page`.
    pub fn block_indices(self, page: PageIdx) -> impl Iterator<Item = BlockIdx> {
        let first = page.0 * self.blocks_per_page() as u32;
        (first..first + self.blocks_per_page() as u32).map(BlockIdx)
    }

    /// The [`BlockRef`] of `page`'s `offset`-th block.
    #[inline]
    pub fn block_ref_at(self, page: PageRef, offset: u64) -> BlockRef {
        BlockRef {
            id: BlockId(self.first_block(page.id).0 + offset),
            idx: self.block_idx(page.idx, offset),
        }
    }

    /// Decompose `addr` into the [`BlockRef`] within its (already interned)
    /// page — the one derivation on the simulator's access path.
    #[inline]
    pub fn block_ref_of(self, page: PageRef, addr: GlobalAddr) -> BlockRef {
        let block = self.block_of(addr);
        BlockRef {
            id: block,
            idx: self.block_idx(page.idx, self.index_in_page(block)),
        }
    }

    /// Pages an interner can hold at this geometry: dense block indices must
    /// fit `u32`.
    pub fn max_interned_pages(self) -> usize {
        (u32::MAX / self.blocks_per_page() as u32) as usize
    }
}

impl fmt::Debug for PageIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p#{}", self.0)
    }
}
impl fmt::Debug for BlockIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b#{}", self.0)
    }
}
impl fmt::Debug for PageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{:?}", self.id, self.idx)
    }
}
impl fmt::Debug for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{:?}", self.id, self.idx)
    }
}

/// Pages a single interner can hold: block indices must fit `u32`, so a page
/// index may not exceed `u32::MAX / BLOCKS_PER_PAGE` (a 256-GB footprint —
/// far past anything the harness simulates).
pub const MAX_INTERNED_PAGES: usize = (u32::MAX / BLOCKS_PER_PAGE as u32) as usize;

/// Assigns dense [`PageIdx`]es to sparse [`PageId`]s in first-touch order.
#[derive(Debug, Clone)]
pub struct PageInterner {
    /// Open-addressed probe table: `page.0 + 1` (0 = empty slot).
    keys: Vec<u64>,
    /// Probe-table values: the interned index of the slot's page.
    vals: Vec<u32>,
    /// Reverse map: `pages[idx]` is the id interned as `PageIdx(idx)`.
    pages: Vec<PageId>,
    /// Most pages this interner may hand out (geometry-dependent: dense
    /// block indices must fit `u32`).
    limit: usize,
}

impl Default for PageInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl PageInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::with_capacity(256)
    }

    /// An empty interner pre-sized for roughly `pages` distinct pages.
    pub fn with_capacity(pages: usize) -> Self {
        let slots = (pages.max(8) * 2).next_power_of_two();
        PageInterner {
            keys: vec![0; slots],
            vals: vec![0; slots],
            pages: Vec::with_capacity(pages),
            limit: MAX_INTERNED_PAGES,
        }
    }

    /// An empty interner whose page cap matches `geometry` (larger
    /// blocks-per-page ratios leave fewer dense block indices per `u32`).
    pub fn with_geometry(geometry: Geometry) -> Self {
        PageInterner {
            limit: geometry.max_interned_pages(),
            ..Self::new()
        }
    }

    /// Number of distinct pages interned so far.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci multiplicative hash onto the power-of-two table.
        let mask = self.keys.len() - 1;
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
    }

    /// Intern `page`, assigning the next dense index on first sight.
    #[inline]
    pub fn intern(&mut self, page: PageId) -> PageIdx {
        let key = page.0 + 1; // page ids fit u64/PAGE_SIZE, so no overflow
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return PageIdx(self.vals[slot]);
            }
            if k == 0 {
                let idx = self.pages.len();
                assert!(idx < self.limit, "page footprint overflows u32");
                self.pages.push(page);
                self.keys[slot] = key;
                self.vals[slot] = idx as u32;
                if (self.pages.len() + 1) * 2 > self.keys.len() {
                    self.grow();
                }
                return PageIdx(idx as u32);
            }
            slot = (slot + 1) & (self.keys.len() - 1);
        }
    }

    /// The index of `page`, if it has been interned.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<PageIdx> {
        let key = page.0 + 1;
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(PageIdx(self.vals[slot]));
            }
            if k == 0 {
                return None;
            }
            slot = (slot + 1) & (self.keys.len() - 1);
        }
    }

    /// The id interned as `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was never handed out by this interner.
    #[inline]
    pub fn page(&self, idx: PageIdx) -> PageId {
        self.pages[idx.index()]
    }

    /// Intern `page` and return the paired [`PageRef`].
    #[inline]
    pub fn intern_ref(&mut self, page: PageId) -> PageRef {
        PageRef {
            id: page,
            idx: self.intern(page),
        }
    }

    /// The [`PageRef`] of an already-interned page.
    pub fn get_ref(&self, page: PageId) -> Option<PageRef> {
        self.get(page).map(|idx| PageRef { id: page, idx })
    }

    /// The [`PageRef`] of the page interned as `idx`.
    pub fn page_ref(&self, idx: PageIdx) -> PageRef {
        PageRef {
            id: self.page(idx),
            idx,
        }
    }

    /// Reconstruct the sparse [`BlockId`] of a dense block index.
    pub fn block_id(&self, idx: BlockIdx) -> BlockId {
        BlockId(self.page(idx.page()).first_block().0 + idx.index_in_page())
    }

    /// Iterate over `(id, idx)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = PageRef> + '_ {
        self.pages.iter().enumerate().map(|(i, id)| PageRef {
            id: *id,
            idx: PageIdx(i as u32),
        })
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_slots]);
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == 0 {
                continue;
            }
            let mut slot = self.slot_of(key);
            while self.keys[slot] != 0 {
                slot = (slot + 1) & (new_slots - 1);
            }
            self.keys[slot] = key;
            self.vals[slot] = val;
        }
    }
}

/// A growable dense table keyed by an interned index: reads past the
/// populated prefix see the default value, writes grow the backing `Vec` on
/// demand.  This is the storage discipline behind every flattened map in the
/// memory system (directory entries, page-table slots, miss histories,
/// policy counters).
#[derive(Debug, Clone, Default)]
pub struct Slab<T> {
    items: Vec<T>,
}

impl<T: Default + Clone> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab { items: Vec::new() }
    }

    /// Number of materialized slots (indices ever written or grown over).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no slot has been materialized.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Shared access to slot `i`, or `None` if it was never materialized
    /// (logically: the default value).
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        self.items.get(i)
    }

    /// Mutable access to slot `i` without growing.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        self.items.get_mut(i)
    }

    /// Mutable access to slot `i`, growing the slab with defaults as needed.
    #[inline]
    pub fn entry(&mut self, i: usize) -> &mut T {
        if i >= self.items.len() {
            self.items.resize(i + 1, T::default());
        }
        &mut self.items[i]
    }

    /// Iterate over materialized slots.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterate over `(index, slot)` pairs of materialized slots.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (usize, &T)> {
        self.items.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_first_touch_dense() {
        let mut it = PageInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.intern(PageId(900)), PageIdx(0));
        assert_eq!(it.intern(PageId(3)), PageIdx(1));
        assert_eq!(it.intern(PageId(900)), PageIdx(0), "re-intern is stable");
        assert_eq!(it.len(), 2);
        assert_eq!(it.page(PageIdx(0)), PageId(900));
        assert_eq!(it.page(PageIdx(1)), PageId(3));
        assert_eq!(it.get(PageId(3)), Some(PageIdx(1)));
        assert_eq!(it.get(PageId(4)), None);
    }

    #[test]
    fn interner_survives_growth() {
        let mut it = PageInterner::with_capacity(4);
        for i in 0..10_000u64 {
            assert_eq!(it.intern(PageId(i * 97)), PageIdx(i as u32));
        }
        assert_eq!(it.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(it.get(PageId(i * 97)), Some(PageIdx(i as u32)));
            assert_eq!(it.page(PageIdx(i as u32)), PageId(i * 97));
        }
        assert_eq!(it.get(PageId(1)), None);
    }

    #[test]
    fn block_indices_are_contiguous_per_page() {
        let mut it = PageInterner::new();
        let p = it.intern_ref(PageId(77));
        assert_eq!(p.idx, PageIdx(0));
        let blocks: Vec<BlockIdx> = p.idx.blocks().collect();
        assert_eq!(blocks.len(), BLOCKS_PER_PAGE as usize);
        assert_eq!(blocks[0], BlockIdx(0));
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.page(), p.idx);
            assert_eq!(b.index_in_page(), i as u64);
            assert_eq!(it.block_id(*b), BlockId(77 * BLOCKS_PER_PAGE + i as u64));
        }
        let q = it.intern_ref(PageId(5));
        assert_eq!(q.idx.block(0), BlockIdx(BLOCKS_PER_PAGE as u32));
    }

    #[test]
    fn refs_pair_ids_with_indices() {
        let mut it = PageInterner::new();
        let p = it.intern_ref(PageId(9));
        let block = BlockId(9 * BLOCKS_PER_PAGE + 5);
        let b = p.block(block);
        assert_eq!(b.id, block);
        assert_eq!(b.idx, PageIdx(0).block(5));
        assert_eq!(b.page_idx(), p.idx);
        assert_eq!(p.block_at(5), b);
        assert_eq!(it.get_ref(PageId(9)), Some(p));
        assert_eq!(it.page_ref(p.idx), p);
        assert!(it.get_ref(PageId(10)).is_none());
        let collected: Vec<PageRef> = it.iter().collect();
        assert_eq!(collected, vec![p]);
    }

    #[test]
    fn slab_grows_on_demand_and_defaults() {
        let mut s: Slab<u64> = Slab::new();
        assert!(s.is_empty());
        assert_eq!(s.get(3), None);
        *s.entry(3) += 7;
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(3), Some(&7));
        assert_eq!(s.get(0), Some(&0), "grown-over slots hold the default");
        assert_eq!(s.get_mut(9), None, "get_mut never grows");
        assert_eq!(s.iter().copied().sum::<u64>(), 7);
        assert_eq!(s.iter_enumerated().count(), 4);
    }
}
