//! Whole-program traces and their validation.

use crate::access::{AccessKind, TraceEvent};
use crate::addr::{ProcId, Topology};
use crate::intern::{PageInterner, Slab};
use serde::{Deserialize, Serialize};

/// Largest lock id a well-formed trace may use.  The simulator keys its
/// lock table directly by id (a dense slab), so ids must be small; the
/// generators number locks densely from zero and stay far below this.
/// Oversized ids — a corrupt replay file, a hand-built trace — are reported
/// as [`TraceError::LockIdOutOfRange`] instead of forcing a giant
/// allocation.
pub const MAX_LOCK_ID: u32 = u16::MAX as u32;

/// The complete set of per-processor traces for one workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramTrace {
    /// Workload name (Table 2 row, e.g. `"lu"`).
    pub name: String,
    /// Cluster topology the trace was generated for.
    pub topology: Topology,
    /// One event stream per processor, indexed by `ProcId::index()`.
    pub per_proc: Vec<Vec<TraceEvent>>,
}

/// Errors found by [`ProgramTrace::validate`] or detected mid-flight while
/// a simulator drains a streaming [`crate::source::TraceSource`] (where
/// whole-trace validation is impossible by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The number of per-processor streams does not match the topology.
    ProcCountMismatch {
        /// Streams present.
        streams: usize,
        /// Processors the topology requires.
        expected: usize,
    },
    /// Processors disagree on the sequence of barrier ids.
    BarrierMismatch {
        /// First processor compared.
        proc_a: ProcId,
        /// Second processor compared.
        proc_b: ProcId,
    },
    /// A lock release without a matching acquire (or vice versa) on one
    /// processor.
    UnbalancedLock {
        /// The offending processor.
        proc: ProcId,
        /// The lock id involved.
        lock: u32,
    },
    /// A lock id above [`MAX_LOCK_ID`] (dense lock tables cannot key it).
    LockIdOutOfRange {
        /// The offending processor.
        proc: ProcId,
        /// The lock id involved.
        lock: u32,
    },
    /// The trace ended with processors still blocked on a barrier or lock
    /// (only detectable mid-run when the trace is streamed: some processor's
    /// stream ran dry while others were waiting on it).
    Deadlock {
        /// Number of processors left blocked.
        blocked: usize,
    },
    /// A streaming source's demultiplexing window grew past its cap: the
    /// consumer kept asking for one processor's events while the underlying
    /// stream produced only other processors', so the parked backlog would
    /// otherwise grow without bound (an adversarial pull order, or a
    /// workload whose processors do not end together).  Raise the cap with
    /// the source's `with_window_cap` if the workload legitimately needs a
    /// wider window.
    StreamWindowExceeded {
        /// Events parked when the cap tripped.
        buffered: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::ProcCountMismatch { streams, expected } => write!(
                f,
                "trace has {streams} per-processor streams but the topology requires {expected}"
            ),
            TraceError::BarrierMismatch { proc_a, proc_b } => write!(
                f,
                "processors {proc_a} and {proc_b} disagree on the barrier sequence"
            ),
            TraceError::UnbalancedLock { proc, lock } => write!(
                f,
                "processor {proc} releases lock {lock} without holding it"
            ),
            TraceError::LockIdOutOfRange { proc, lock } => write!(
                f,
                "processor {proc} uses lock id {lock}, above the supported maximum {MAX_LOCK_ID}"
            ),
            TraceError::Deadlock { blocked } => write!(
                f,
                "trace ended with {blocked} processor(s) still blocked on a barrier or lock"
            ),
            TraceError::StreamWindowExceeded { buffered, cap } => write!(
                f,
                "streaming source buffered {buffered} events for processors nobody is pulling, \
                 past the {cap}-event window cap"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Summary statistics of a trace, used by tests and the experiment harness
/// to sanity-check workload shape (read/write mix, footprint, sharing).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total shared-memory accesses across all processors.
    pub accesses: u64,
    /// Total reads.
    pub reads: u64,
    /// Total writes.
    pub writes: u64,
    /// Total compute cycles across all processors.
    pub compute_cycles: u64,
    /// Number of barrier events per processor (identical across processors
    /// for a valid trace).
    pub barriers: u64,
    /// Number of distinct pages touched by any processor.
    pub footprint_pages: u64,
    /// Number of distinct pages touched by more than one *node*.
    pub node_shared_pages: u64,
    /// Number of distinct pages written by at least one processor.
    pub written_pages: u64,
}

impl TraceStats {
    /// Fraction of accesses that are writes (0 if no accesses).
    pub fn write_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.writes as f64 / self.accesses as f64
        }
    }
}

impl ProgramTrace {
    /// Create a trace; `per_proc.len()` must equal `topology.total_procs()`.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        per_proc: Vec<Vec<TraceEvent>>,
    ) -> Self {
        ProgramTrace {
            name: name.into(),
            topology,
            per_proc,
        }
    }

    /// Total number of events across all processors.
    pub fn total_events(&self) -> usize {
        self.per_proc.iter().map(Vec::len).sum()
    }

    /// The event stream of one processor.
    pub fn events_of(&self, proc: ProcId) -> &[TraceEvent] {
        &self.per_proc[proc.index()]
    }

    /// Check structural well-formedness: correct processor count, matching
    /// barrier sequences, balanced locks.
    pub fn validate(&self) -> Result<(), TraceError> {
        let expected = self.topology.total_procs();
        if self.per_proc.len() != expected {
            return Err(TraceError::ProcCountMismatch {
                streams: self.per_proc.len(),
                expected,
            });
        }

        // All processors must observe the same ordered sequence of barriers.
        let barrier_seq = |events: &[TraceEvent]| -> Vec<u32> {
            events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Barrier(id) => Some(*id),
                    _ => None,
                })
                .collect()
        };
        let reference = barrier_seq(&self.per_proc[0]);
        for (i, events) in self.per_proc.iter().enumerate().skip(1) {
            if barrier_seq(events) != reference {
                return Err(TraceError::BarrierMismatch {
                    proc_a: ProcId(0),
                    proc_b: ProcId(i as u16),
                });
            }
        }

        // Locks must be acquired before released and not left held... a held
        // lock at the end of the trace is tolerated (some SPLASH kernels end
        // inside a critical section guard), but a release without a matching
        // acquire is always a bug in the generator.
        for (i, events) in self.per_proc.iter().enumerate() {
            let mut held: Vec<u32> = Vec::new();
            for e in events {
                if let TraceEvent::Lock(id) | TraceEvent::Unlock(id) = e {
                    if *id > MAX_LOCK_ID {
                        return Err(TraceError::LockIdOutOfRange {
                            proc: ProcId(i as u16),
                            lock: *id,
                        });
                    }
                }
                match e {
                    TraceEvent::Lock(id) => held.push(*id),
                    TraceEvent::Unlock(id) => match held.iter().rposition(|h| h == id) {
                        Some(pos) => {
                            held.remove(pos);
                        }
                        None => {
                            return Err(TraceError::UnbalancedLock {
                                proc: ProcId(i as u16),
                                lock: *id,
                            })
                        }
                    },
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Compute summary statistics.
    ///
    /// This drives the same [`StatsAccumulator`] the streaming sources feed
    /// incrementally, so batch and streamed statistics agree by
    /// construction.
    pub fn stats(&self) -> TraceStats {
        let mut acc = StatsAccumulator::new(self.topology);
        for (i, events) in self.per_proc.iter().enumerate() {
            for e in events {
                acc.observe(ProcId(i as u16), e);
            }
        }
        acc.snapshot()
    }
}

/// Incrementally accumulates [`TraceStats`] one event at a time.
///
/// [`ProgramTrace::stats`] folds a materialized trace through this; the
/// streaming sources in [`crate::source`] feed it as events flow past, so a
/// fully drained stream reports exactly the statistics the batch path would.
#[derive(Debug, Clone)]
pub struct StatsAccumulator {
    topology: Topology,
    stats: TraceStats,
    /// Interned touched pages: the interner's population *is* the footprint.
    pages: PageInterner,
    /// Per interned page: bitmask of touching nodes plus a written flag.
    /// Indexed by `PageIdx`; the accumulator sits on the streaming hot path,
    /// so this is a dense slab, not a map.
    page_meta: Slab<PageMeta>,
}

#[derive(Debug, Clone, Copy, Default)]
struct PageMeta {
    nodes: u64,
    written: bool,
}

impl StatsAccumulator {
    /// An empty accumulator for a trace over `topology`.
    pub fn new(topology: Topology) -> Self {
        StatsAccumulator {
            topology,
            stats: TraceStats::default(),
            pages: PageInterner::new(),
            page_meta: Slab::new(),
        }
    }

    /// Fold one event of `proc`'s stream into the statistics.
    ///
    /// Events of one processor must be fed in stream order; interleaving
    /// across processors is irrelevant.  Barriers are counted on processor 0
    /// only (they appear once per processor in a valid trace).
    pub fn observe(&mut self, proc: ProcId, ev: &TraceEvent) {
        match ev {
            TraceEvent::Access(m) => {
                self.stats.accesses += 1;
                let idx = self.pages.intern(m.page()).index();
                let meta = self.page_meta.entry(idx);
                match m.kind {
                    AccessKind::Read => self.stats.reads += 1,
                    AccessKind::Write => {
                        self.stats.writes += 1;
                        meta.written = true;
                    }
                }
                let node = self.topology.node_of(proc);
                meta.nodes |= 1u64 << node.index().min(63);
            }
            TraceEvent::Compute(c) => self.stats.compute_cycles += u64::from(*c),
            TraceEvent::Barrier(_) if proc.index() == 0 => self.stats.barriers += 1,
            _ => {}
        }
    }

    /// The statistics over everything observed so far.
    pub fn snapshot(&self) -> TraceStats {
        let mut stats = self.stats.clone();
        stats.footprint_pages = self.pages.len() as u64;
        stats.written_pages = self.page_meta.iter().filter(|m| m.written).count() as u64;
        stats.node_shared_pages = self
            .page_meta
            .iter()
            .filter(|m| m.nodes.count_ones() > 1)
            .count() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{GlobalAddr, PAGE_SIZE};

    fn two_proc_topology() -> Topology {
        Topology::new(2, 1)
    }

    #[test]
    fn validate_accepts_well_formed_trace() {
        let t = ProgramTrace::new(
            "toy",
            two_proc_topology(),
            vec![
                vec![
                    TraceEvent::read(GlobalAddr(0)),
                    TraceEvent::Barrier(0),
                    TraceEvent::Lock(1),
                    TraceEvent::write(GlobalAddr(64)),
                    TraceEvent::Unlock(1),
                    TraceEvent::Barrier(1),
                ],
                vec![
                    TraceEvent::Compute(100),
                    TraceEvent::Barrier(0),
                    TraceEvent::Barrier(1),
                ],
            ],
        );
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_wrong_proc_count() {
        let t = ProgramTrace::new("toy", two_proc_topology(), vec![vec![]]);
        assert_eq!(
            t.validate(),
            Err(TraceError::ProcCountMismatch {
                streams: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn validate_rejects_mismatched_barriers() {
        let t = ProgramTrace::new(
            "toy",
            two_proc_topology(),
            vec![
                vec![TraceEvent::Barrier(0), TraceEvent::Barrier(1)],
                vec![TraceEvent::Barrier(0)],
            ],
        );
        assert!(matches!(
            t.validate(),
            Err(TraceError::BarrierMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_unlock_without_lock() {
        let t = ProgramTrace::new(
            "toy",
            two_proc_topology(),
            vec![vec![TraceEvent::Unlock(3)], vec![]],
        );
        assert_eq!(
            t.validate(),
            Err(TraceError::UnbalancedLock {
                proc: ProcId(0),
                lock: 3
            })
        );
    }

    #[test]
    fn stats_count_accesses_and_pages() {
        let t = ProgramTrace::new(
            "toy",
            two_proc_topology(),
            vec![
                vec![
                    TraceEvent::read(GlobalAddr(0)),
                    TraceEvent::write(GlobalAddr(8)),
                    TraceEvent::Compute(50),
                    TraceEvent::Barrier(0),
                ],
                vec![
                    TraceEvent::read(GlobalAddr(PAGE_SIZE)),
                    TraceEvent::read(GlobalAddr(0)),
                    TraceEvent::Barrier(0),
                ],
            ],
        );
        let s = t.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.compute_cycles, 50);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.footprint_pages, 2);
        assert_eq!(s.written_pages, 1);
        // Page 0 is touched by both nodes (procs 0 and 1 are on different
        // nodes in this 2x1 topology).
        assert_eq!(s.node_shared_pages, 1);
        assert!((s.write_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn incremental_stats_match_batch_stats() {
        let t = ProgramTrace::new(
            "toy",
            two_proc_topology(),
            vec![
                vec![
                    TraceEvent::read(GlobalAddr(0)),
                    TraceEvent::write(GlobalAddr(8)),
                    TraceEvent::Compute(50),
                    TraceEvent::Barrier(0),
                ],
                vec![
                    TraceEvent::read(GlobalAddr(PAGE_SIZE)),
                    TraceEvent::read(GlobalAddr(0)),
                    TraceEvent::Barrier(0),
                ],
            ],
        );
        // Feed the accumulator in a different (interleaved) order than the
        // batch path walks: per-proc order is all that matters.
        let mut acc = StatsAccumulator::new(t.topology);
        let mut cursors = [0usize; 2];
        loop {
            let mut progressed = false;
            for (p, cursor) in cursors.iter_mut().enumerate() {
                if let Some(ev) = t.per_proc[p].get(*cursor) {
                    acc.observe(ProcId(p as u16), ev);
                    *cursor += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(acc.snapshot(), t.stats());
    }

    #[test]
    fn trace_errors_display() {
        let e = TraceError::UnbalancedLock {
            proc: ProcId(3),
            lock: 9,
        };
        assert!(e.to_string().contains("lock 9"));
        assert!(TraceError::Deadlock { blocked: 2 }
            .to_string()
            .contains("2"));
    }

    #[test]
    fn total_events_and_events_of() {
        let t = ProgramTrace::new(
            "toy",
            two_proc_topology(),
            vec![
                vec![TraceEvent::Compute(1)],
                vec![TraceEvent::Compute(2), TraceEvent::Compute(3)],
            ],
        );
        assert_eq!(t.total_events(), 3);
        assert_eq!(t.events_of(ProcId(1)).len(), 2);
    }
}
