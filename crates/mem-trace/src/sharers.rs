//! [`SharerSet`]: a scalable set of small indices (sharer nodes, replica
//! holders, blocks present in a page frame).
//!
//! The directory's sharer vector, the MigRep engine's replica masks and the
//! page cache's fine-grain presence tags were all `u64` bitmasks, which
//! hard-capped the simulated cluster at 64 nodes (and a page at 64 blocks).
//! `SharerSet` removes the cap without giving up the hot path: sets whose
//! members all fit below 64 live in one inline word — no allocation, and
//! bit-for-bit the operations the masks performed — while inserting any
//! larger member promotes the set to a boxed multi-word bitset.
//!
//! Iteration order is always ascending, matching the `(0..64).filter(...)`
//! scans the masks used; replacing them is invisible in any simulation
//! result.

use crate::addr::NodeId;
use std::fmt;

/// Feature-gated profiling counters (`--features profile-counters`):
/// process-wide tallies of how often sets promote to the boxed
/// representation and how many membership operations run against boxed
/// words.  Together with the core crate's gather-loop counters they
/// attribute the >64-node cost cliff.  Compiled out entirely (zero cost)
/// when the feature is off.
#[cfg(feature = "profile-counters")]
pub mod profile {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Inline→boxed promotions (an allocation each).
    pub static PROMOTIONS: AtomicU64 = AtomicU64::new(0);
    /// `contains`/`insert`/`remove` calls served by the boxed repr.
    pub static BOXED_OPS: AtomicU64 = AtomicU64::new(0);

    /// `(promotions, boxed membership ops)` since the last [`reset`].
    pub fn snapshot() -> (u64, u64) {
        (
            PROMOTIONS.load(Ordering::Relaxed),
            BOXED_OPS.load(Ordering::Relaxed),
        )
    }

    /// Zero both counters.
    pub fn reset() {
        PROMOTIONS.store(0, Ordering::Relaxed);
        BOXED_OPS.store(0, Ordering::Relaxed);
    }
}

#[cfg(feature = "profile-counters")]
macro_rules! count {
    ($counter:ident) => {
        profile::$counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    };
}
#[cfg(not(feature = "profile-counters"))]
macro_rules! count {
    ($counter:ident) => {};
}

/// Set representation: one inline word for members `< 64`, a boxed word
/// vector beyond.  A set never demotes back to inline (removal leaves the
/// boxed words in place) — promotion is rare and one-way keeps `insert`
/// branch-predictable.
#[derive(Clone)]
enum Repr {
    Inline(u64),
    Boxed(Box<[u64]>),
}

/// A set of small unsigned indices: allocation-free up to 64 members'
/// worth of index space, a boxed bitset beyond.
#[derive(Clone)]
pub struct SharerSet {
    repr: Repr,
}

impl PartialEq for SharerSet {
    /// Logical equality: a boxed set whose members all dropped below 64
    /// equals the inline set with the same members.
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let common = a.len().min(b.len());
        a[..common] == b[..common]
            && a[common..].iter().all(|w| *w == 0)
            && b[common..].iter().all(|w| *w == 0)
    }
}

impl Eq for SharerSet {}

impl Default for SharerSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SharerSet {
    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        SharerSet {
            repr: Repr::Inline(0),
        }
    }

    /// A set containing exactly `index`.
    #[inline]
    pub fn single(index: usize) -> Self {
        let mut s = Self::new();
        s.insert(index);
        s
    }

    /// Number of members.
    #[inline]
    pub fn count(&self) -> u32 {
        match &self.repr {
            Repr::Inline(w) => w.count_ones(),
            Repr::Boxed(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// `true` if the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Inline(w) => *w == 0,
            Repr::Boxed(words) => words.iter().all(|w| *w == 0),
        }
    }

    /// `true` if `index` is a member.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        match &self.repr {
            Repr::Inline(w) => index < 64 && w & (1u64 << index) != 0,
            Repr::Boxed(words) => {
                count!(BOXED_OPS);
                words
                    .get(index / 64)
                    .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
            }
        }
    }

    /// Insert `index`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        if let Repr::Inline(w) = &mut self.repr {
            if index < 64 {
                let bit = 1u64 << index;
                let fresh = *w & bit == 0;
                *w |= bit;
                return fresh;
            }
            self.promote(index / 64 + 1);
        }
        let Repr::Boxed(words) = &mut self.repr else {
            unreachable!("promoted above")
        };
        count!(BOXED_OPS);
        let word = index / 64;
        if word >= words.len() {
            let mut grown = vec![0u64; (word + 1).next_power_of_two()];
            grown[..words.len()].copy_from_slice(words);
            *words = grown.into_boxed_slice();
        }
        let bit = 1u64 << (index % 64);
        let fresh = words[word] & bit == 0;
        words[word] |= bit;
        fresh
    }

    /// Remove `index`; returns `true` if it was a member.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        match &mut self.repr {
            Repr::Inline(w) => {
                if index >= 64 {
                    return false;
                }
                let bit = 1u64 << index;
                let had = *w & bit != 0;
                *w &= !bit;
                had
            }
            Repr::Boxed(words) => {
                count!(BOXED_OPS);
                let Some(w) = words.get_mut(index / 64) else {
                    return false;
                };
                let bit = 1u64 << (index % 64);
                let had = *w & bit != 0;
                *w &= !bit;
                had
            }
        }
    }

    /// Remove every member.
    #[inline]
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline(w) => *w = 0,
            Repr::Boxed(words) => words.iter_mut().for_each(|w| *w = 0),
        }
    }

    /// The smallest member, if any (the masks' `trailing_zeros` idiom).
    #[inline]
    pub fn first(&self) -> Option<usize> {
        match &self.repr {
            Repr::Inline(w) => (*w != 0).then(|| w.trailing_zeros() as usize),
            Repr::Boxed(words) => words
                .iter()
                .enumerate()
                .find(|(_, w)| **w != 0)
                .map(|(i, w)| i * 64 + w.trailing_zeros() as usize),
        }
    }

    /// The backing words, low to high.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => std::slice::from_ref(w),
            Repr::Boxed(words) => words,
        }
    }

    /// Iterate over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let words: &[u64] = self.words();
        words.iter().enumerate().flat_map(|(i, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(i * 64 + bit)
            })
        })
    }

    /// The members as [`NodeId`]s, ascending (the directory/report shape).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.iter().map(|i| NodeId(i as u16)).collect()
    }

    #[cold]
    fn promote(&mut self, min_words: usize) {
        let Repr::Inline(w) = self.repr else {
            return;
        };
        count!(PROMOTIONS);
        let mut words = vec![0u64; min_words.max(2).next_power_of_two()];
        words[0] = w;
        self.repr = Repr::Boxed(words.into_boxed_slice());
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for SharerSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = SharerSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_set_behaves_like_a_u64_mask() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert!(s.insert(3));
        assert!(s.insert(63));
        assert!(!s.insert(3), "re-insert is not fresh");
        assert_eq!(s.count(), 2);
        assert!(s.contains(3) && s.contains(63) && !s.contains(4));
        assert_eq!(s.first(), Some(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63]);
        assert_eq!(s.nodes(), vec![NodeId(3), NodeId(63)]);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.count(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn promotion_preserves_members_and_order() {
        let mut s = SharerSet::new();
        s.insert(5);
        s.insert(63);
        s.insert(64); // promotes
        s.insert(200);
        assert_eq!(s.count(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 64, 200]);
        assert_eq!(s.first(), Some(5));
        assert!(s.contains(200) && !s.contains(199));
        assert!(s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 200]);
        // Contains/remove past the boxed extent are safe no-ops.
        assert!(!s.contains(10_000));
        assert!(!s.remove(10_000));
    }

    #[test]
    fn single_and_from_iterator() {
        assert_eq!(SharerSet::single(7).iter().collect::<Vec<_>>(), vec![7]);
        assert_eq!(SharerSet::single(100).first(), Some(100));
        let s: SharerSet = [9, 1, 1, 65].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 9, 65]);
    }

    #[test]
    fn equality_is_logical_across_representations() {
        let mut a = SharerSet::new();
        let mut b = SharerSet::new();
        a.insert(12);
        b.insert(12);
        assert_eq!(a, b);
        b.insert(13);
        assert_ne!(a, b);
        // A boxed set whose high members were removed equals the inline set.
        let mut boxed = SharerSet::new();
        boxed.insert(12);
        boxed.insert(100);
        boxed.remove(100);
        assert_eq!(boxed, a);
        assert_eq!(a, boxed);
    }

    #[test]
    fn debug_lists_members() {
        let mut s = SharerSet::new();
        s.insert(2);
        s.insert(70);
        assert_eq!(format!("{s:?}"), "{2, 70}");
    }
}
