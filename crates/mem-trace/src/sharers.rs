//! [`SharerSet`]: a scalable set of small indices (sharer nodes, replica
//! holders, blocks present in a page frame).
//!
//! The directory's sharer vector, the MigRep engine's replica masks and the
//! page cache's fine-grain presence tags were all `u64` bitmasks, which
//! hard-capped the simulated cluster at 64 nodes (and a page at 64 blocks).
//! `SharerSet` removes the cap without giving up the hot path, through
//! three tiers:
//!
//! * **inline `u64`** — members all `< 64` live in one word, bit-for-bit
//!   the operations the masks performed;
//! * **inline `u128`** (two words, still no allocation) — covers clusters
//!   up to 128 nodes, the regime where the old boxed representation paid a
//!   measured ~2x per-access cliff (see `tests/profile_cliff.rs`);
//! * **hierarchical bitset** — a summary word whose bit *i* says "leaf
//!   word *i* is non-empty" over up to 64 × 64 = 4096 indices, so
//!   `first`/`is_empty` on a wide, sparse set read one word instead of
//!   scanning the whole leaf vector.
//!
//! Iteration order is always ascending, matching the `(0..64).filter(...)`
//! scans the masks used; the tiers are logically indistinguishable
//! (`PartialEq` compares members, not representations), so tier changes
//! are invisible in any simulation result.

use crate::addr::NodeId;
use std::fmt;

/// Leaves covered by the hierarchical tier's summary word.  Indices beyond
/// `SUMMARY_LEAVES * 64` still work (the leaf vector simply grows and the
/// tail is scanned linearly), but every geometry the repo simulates —
/// 512-node clusters, 128-block pages — fits under the summary.
const SUMMARY_LEAVES: usize = 64;

/// Feature-gated profiling counters (`--features profile-counters`):
/// process-wide tallies of membership operations per tier plus tier
/// promotions, so the >64-node cost attribution can read which tier is
/// serving the hot path instead of inferring it from wall clock.
/// Compiled out entirely (zero cost) when the feature is off.
#[cfg(feature = "profile-counters")]
pub mod profile {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Tier promotions (inline-u64 → inline-u128 → hierarchical; the
    /// final step is the only allocation).
    pub static PROMOTIONS: AtomicU64 = AtomicU64::new(0);
    /// `contains`/`insert`/`remove` calls served by the inline-u64 tier.
    pub static INLINE64_OPS: AtomicU64 = AtomicU64::new(0);
    /// Membership ops served by the inline-u128 (two-word) tier.
    pub static INLINE128_OPS: AtomicU64 = AtomicU64::new(0);
    /// Membership ops served by the hierarchical (boxed) tier.
    pub static HIER_OPS: AtomicU64 = AtomicU64::new(0);

    /// Per-tier membership-op histogram since the last [`reset`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct TierSnapshot {
        /// Tier promotions (each set takes at most two, ever).
        pub promotions: u64,
        /// Ops served allocation-free by the single-word tier.
        pub inline64_ops: u64,
        /// Ops served allocation-free by the two-word tier.
        pub inline128_ops: u64,
        /// Ops that touched the boxed hierarchical tier.
        pub hier_ops: u64,
    }

    /// Snapshot all four counters.
    pub fn snapshot() -> TierSnapshot {
        TierSnapshot {
            promotions: PROMOTIONS.load(Ordering::Relaxed),
            inline64_ops: INLINE64_OPS.load(Ordering::Relaxed),
            inline128_ops: INLINE128_OPS.load(Ordering::Relaxed),
            hier_ops: HIER_OPS.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset() {
        PROMOTIONS.store(0, Ordering::Relaxed);
        INLINE64_OPS.store(0, Ordering::Relaxed);
        INLINE128_OPS.store(0, Ordering::Relaxed);
        HIER_OPS.store(0, Ordering::Relaxed);
    }
}

#[cfg(feature = "profile-counters")]
macro_rules! count {
    ($counter:ident) => {
        profile::$counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    };
}
#[cfg(not(feature = "profile-counters"))]
macro_rules! count {
    ($counter:ident) => {};
}

/// Set representation, one variant per tier.  Promotion is one-way — a set
/// never demotes when members are removed — which keeps `insert`
/// branch-predictable and makes a set's tier a monotone function of the
/// largest index it has ever held.
#[derive(Clone)]
enum Repr {
    /// Members all `< 64`: one inline word.
    Inline(u64),
    /// Members all `< 128`: two inline words, still allocation-free.
    Inline2([u64; 2]),
    /// Arbitrary members: one boxed allocation whose word 0 is a summary
    /// over the leaf words that follow (`words[0]` bit *i* ⇔
    /// `words[1 + i] != 0`, for the first [`SUMMARY_LEAVES`] leaves).
    /// Embedding the summary in the same allocation keeps this variant's
    /// payload at one fat pointer, so the whole enum stays the size the
    /// old two-variant (inline/boxed) representation had — directory
    /// entries hold one of these per block, and growing them measurably
    /// regresses the simulator's cache locality.
    Hier(Box<[u64]>),
}

/// A set of small unsigned indices: allocation-free up to 128 members'
/// worth of index space, a summary-accelerated boxed bitset beyond.
#[derive(Clone)]
pub struct SharerSet {
    repr: Repr,
}

impl PartialEq for SharerSet {
    /// Logical equality: a hierarchical set whose members all dropped
    /// below 64 equals the inline set with the same members.
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        let common = a.len().min(b.len());
        a[..common] == b[..common]
            && a[common..].iter().all(|w| *w == 0)
            && b[common..].iter().all(|w| *w == 0)
    }
}

impl Eq for SharerSet {}

impl Default for SharerSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SharerSet {
    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        SharerSet {
            repr: Repr::Inline(0),
        }
    }

    /// A set containing exactly `index`.
    #[inline]
    pub fn single(index: usize) -> Self {
        let mut s = Self::new();
        s.insert(index);
        s
    }

    /// Number of members.
    #[inline]
    pub fn count(&self) -> u32 {
        match &self.repr {
            Repr::Inline(w) => w.count_ones(),
            Repr::Inline2(w) => w[0].count_ones() + w[1].count_ones(),
            Repr::Hier(words) => words[1..].iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// `true` if the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Inline(w) => *w == 0,
            Repr::Inline2(w) => w[0] | w[1] == 0,
            Repr::Hier(words) => {
                let (summary, leaves) = (words[0], &words[1..]);
                summary == 0
                    && leaves
                        .get(SUMMARY_LEAVES..)
                        .is_none_or(|tail| tail.iter().all(|w| *w == 0))
            }
        }
    }

    /// `true` if `index` is a member.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        match &self.repr {
            Repr::Inline(w) => {
                count!(INLINE64_OPS);
                index < 64 && w & (1u64 << index) != 0
            }
            Repr::Inline2(w) => {
                count!(INLINE128_OPS);
                index < 128 && w[index / 64] & (1u64 << (index % 64)) != 0
            }
            Repr::Hier(words) => {
                count!(HIER_OPS);
                words[1..]
                    .get(index / 64)
                    .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
            }
        }
    }

    /// Insert `index`; returns `true` if it was newly added.  The loop
    /// re-dispatches after a tier promotion and runs at most twice.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        loop {
            match &mut self.repr {
                Repr::Inline(w) => {
                    if index < 64 {
                        count!(INLINE64_OPS);
                        let bit = 1u64 << index;
                        let fresh = *w & bit == 0;
                        *w |= bit;
                        return fresh;
                    }
                    self.promote(index);
                }
                Repr::Inline2(w) => {
                    if index < 128 {
                        count!(INLINE128_OPS);
                        let bit = 1u64 << (index % 64);
                        let word = &mut w[index / 64];
                        let fresh = *word & bit == 0;
                        *word |= bit;
                        return fresh;
                    }
                    self.promote(index);
                }
                Repr::Hier(words) => {
                    count!(HIER_OPS);
                    let leaf = index / 64;
                    if 1 + leaf >= words.len() {
                        let mut grown = vec![0u64; 1 + (leaf + 1).next_power_of_two()];
                        grown[..words.len()].copy_from_slice(words);
                        *words = grown.into_boxed_slice();
                    }
                    let bit = 1u64 << (index % 64);
                    let fresh = words[1 + leaf] & bit == 0;
                    words[1 + leaf] |= bit;
                    if leaf < SUMMARY_LEAVES {
                        words[0] |= 1u64 << leaf;
                    }
                    return fresh;
                }
            }
        }
    }

    /// Remove `index`; returns `true` if it was a member.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        match &mut self.repr {
            Repr::Inline(w) => {
                count!(INLINE64_OPS);
                if index >= 64 {
                    return false;
                }
                let bit = 1u64 << index;
                let had = *w & bit != 0;
                *w &= !bit;
                had
            }
            Repr::Inline2(w) => {
                count!(INLINE128_OPS);
                if index >= 128 {
                    return false;
                }
                let bit = 1u64 << (index % 64);
                let word = &mut w[index / 64];
                let had = *word & bit != 0;
                *word &= !bit;
                had
            }
            Repr::Hier(words) => {
                count!(HIER_OPS);
                let leaf = index / 64;
                let Some(w) = words.get_mut(1 + leaf) else {
                    return false;
                };
                let bit = 1u64 << (index % 64);
                let had = *w & bit != 0;
                *w &= !bit;
                if *w == 0 && leaf < SUMMARY_LEAVES {
                    words[0] &= !(1u64 << leaf);
                }
                had
            }
        }
    }

    /// Remove every member.
    #[inline]
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline(w) => *w = 0,
            Repr::Inline2(w) => *w = [0; 2],
            Repr::Hier(words) => words.iter_mut().for_each(|w| *w = 0),
        }
    }

    /// The smallest member, if any (the masks' `trailing_zeros` idiom).
    /// On the hierarchical tier the summary word locates the first
    /// non-empty leaf in one scan instead of walking the leaf vector.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        match &self.repr {
            Repr::Inline(w) => (*w != 0).then(|| w.trailing_zeros() as usize),
            Repr::Inline2(w) => {
                if w[0] != 0 {
                    Some(w[0].trailing_zeros() as usize)
                } else if w[1] != 0 {
                    Some(64 + w[1].trailing_zeros() as usize)
                } else {
                    None
                }
            }
            Repr::Hier(words) => {
                let (summary, leaves) = (words[0], &words[1..]);
                if summary != 0 {
                    let leaf = summary.trailing_zeros() as usize;
                    return Some(leaf * 64 + leaves[leaf].trailing_zeros() as usize);
                }
                leaves
                    .get(SUMMARY_LEAVES..)
                    .into_iter()
                    .flatten()
                    .enumerate()
                    .find(|(_, w)| **w != 0)
                    .map(|(i, w)| (SUMMARY_LEAVES + i) * 64 + w.trailing_zeros() as usize)
            }
        }
    }

    /// The backing words, low to high.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => std::slice::from_ref(w),
            Repr::Inline2(w) => w,
            Repr::Hier(words) => &words[1..],
        }
    }

    /// Iterate over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let words: &[u64] = self.words();
        words.iter().enumerate().flat_map(|(i, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(i * 64 + bit)
            })
        })
    }

    /// The members as [`NodeId`]s, ascending (the directory/report shape).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.iter().map(|i| NodeId(i as u16)).collect()
    }

    /// Promote to the smallest tier that can hold `index`: two inline
    /// words for `64..128`, the hierarchical bitset beyond.
    #[cold]
    fn promote(&mut self, index: usize) {
        count!(PROMOTIONS);
        match self.repr {
            Repr::Inline(w) => {
                if index < 128 {
                    self.repr = Repr::Inline2([w, 0]);
                } else {
                    self.repr = Self::hier_from(&[w, 0], index);
                }
            }
            Repr::Inline2(w) => self.repr = Self::hier_from(&w, index),
            Repr::Hier { .. } => {}
        }
    }

    /// Build a hierarchical repr seeded with `low` leaf words and sized
    /// to hold `index` (word 0 of the allocation is the summary).
    fn hier_from(low: &[u64], index: usize) -> Repr {
        let min_words = index / 64 + 1;
        let mut words = vec![0u64; 1 + min_words.max(2).next_power_of_two()];
        words[1..1 + low.len()].copy_from_slice(low);
        for (i, w) in low.iter().enumerate().take(SUMMARY_LEAVES) {
            if *w != 0 {
                words[0] |= 1u64 << i;
            }
        }
        Repr::Hier(words.into_boxed_slice())
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for SharerSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = SharerSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_set_behaves_like_a_u64_mask() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert!(s.insert(3));
        assert!(s.insert(63));
        assert!(!s.insert(3), "re-insert is not fresh");
        assert_eq!(s.count(), 2);
        assert!(s.contains(3) && s.contains(63) && !s.contains(4));
        assert_eq!(s.first(), Some(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63]);
        assert_eq!(s.nodes(), vec![NodeId(3), NodeId(63)]);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.count(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn promotion_preserves_members_and_order() {
        let mut s = SharerSet::new();
        s.insert(5);
        s.insert(63);
        s.insert(64); // promotes to the two-word tier
        s.insert(200); // promotes to the hierarchical tier
        assert_eq!(s.count(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 64, 200]);
        assert_eq!(s.first(), Some(5));
        assert!(s.contains(200) && !s.contains(199));
        assert!(s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 200]);
        // Contains/remove past the boxed extent are safe no-ops.
        assert!(!s.contains(10_000));
        assert!(!s.remove(10_000));
    }

    #[test]
    fn the_two_word_tier_covers_128_indices_without_allocating() {
        let mut s = SharerSet::new();
        s.insert(64); // Inline -> Inline2
        assert!(matches!(s.repr, Repr::Inline2(_)));
        s.insert(127);
        s.insert(0);
        assert!(matches!(s.repr, Repr::Inline2(_)), "127 stays inline");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 127]);
        assert_eq!(s.first(), Some(0));
        assert!(s.remove(0));
        assert_eq!(s.first(), Some(64));
        assert!(s.contains(127) && !s.contains(128));
        // 128 is the first index that forces the hierarchical tier.
        s.insert(128);
        assert!(matches!(s.repr, Repr::Hier { .. }));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64, 127, 128]);
    }

    #[test]
    fn hierarchical_summary_tracks_leaf_occupancy() {
        let mut s = SharerSet::new();
        s.insert(500); // straight from Inline to Hier
        let Repr::Hier(ref words) = s.repr else {
            panic!("500 must land in the hierarchical tier");
        };
        assert_eq!(words[0], 1u64 << (500 / 64));
        assert_eq!(s.first(), Some(500));
        s.insert(3);
        assert_eq!(s.first(), Some(3));
        assert!(s.remove(3));
        // Leaf 0 emptied: the summary bit must clear so `first` skips it.
        assert_eq!(s.first(), Some(500));
        assert!(s.remove(500));
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
    }

    #[test]
    fn indices_beyond_the_summary_extent_still_work() {
        // SUMMARY_LEAVES * 64 = 4096 is the last summarised index; the
        // tail past it is scanned linearly but must stay correct.
        let mut s = SharerSet::new();
        let big = SUMMARY_LEAVES * 64 + 17;
        s.insert(big);
        assert!(s.contains(big));
        assert!(!s.is_empty());
        assert_eq!(s.first(), Some(big));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![big]);
        s.insert(2);
        assert_eq!(s.first(), Some(2));
        assert!(s.remove(big));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2]);
        assert!(!s.is_empty());
        assert!(s.remove(2));
        assert!(s.is_empty());
    }

    #[test]
    fn single_and_from_iterator() {
        assert_eq!(SharerSet::single(7).iter().collect::<Vec<_>>(), vec![7]);
        assert_eq!(SharerSet::single(100).first(), Some(100));
        let s: SharerSet = [9, 1, 1, 65].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 9, 65]);
    }

    #[test]
    fn equality_is_logical_across_representations() {
        let mut a = SharerSet::new();
        let mut b = SharerSet::new();
        a.insert(12);
        b.insert(12);
        assert_eq!(a, b);
        b.insert(13);
        assert_ne!(a, b);
        // A two-word set whose high members were removed equals the
        // inline set, and likewise for the hierarchical tier.
        let mut wide = SharerSet::new();
        wide.insert(12);
        wide.insert(100);
        wide.remove(100);
        assert_eq!(wide, a);
        assert_eq!(a, wide);
        let mut hier = SharerSet::new();
        hier.insert(12);
        hier.insert(400);
        hier.remove(400);
        assert_eq!(hier, a);
        assert_eq!(a, hier);
        assert_eq!(hier, wide);
    }

    #[test]
    fn debug_lists_members() {
        let mut s = SharerSet::new();
        s.insert(2);
        s.insert(70);
        assert_eq!(format!("{s:?}"), "{2, 70}");
    }
}
