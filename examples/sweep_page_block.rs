//! Parameter-space sweep: page size x block size x cluster size on radix.
//!
//! The paper fixes 4-KB pages and 64-byte blocks on an 8-node cluster; this
//! example sweeps all three machine axes with the [`Sweep`] API and reports
//! normalized execution time and interconnect traffic for CC-NUMA+MigRep
//! and R-NUMA.  Every point is normalized against perfect CC-NUMA *at the
//! same machine point*, so the grid shows how each technique's advantage
//! moves as pages grow (page operations get heavier, replication coarser)
//! and blocks grow (fewer, fatter messages).
//!
//! The cluster-size axis includes a point beyond 64 nodes — past the old
//! `u64` sharer-mask cap that `SharerSet` removed.
//!
//! Run with (a few minutes in release mode — the 96-node points dominate;
//! add `--tiny` for a CI-sized grid that finishes in under a minute):
//!
//! ```text
//! cargo run --release --example sweep_page_block
//! ```

use dsm_repro::bench::{report, Axis, ExperimentScale, Metric, Sweep};
use dsm_repro::prelude::*;

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let thresholds = Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    };

    let mut sweep = Sweep::new("radix: page x block x cluster grid")
        .system(
            System::cc_numa()
                .with(MigRep::both())
                .with(thresholds)
                .build(),
        )
        .system(System::r_numa().with(thresholds).build())
        .workloads(["radix"])
        .scale(ExperimentScale::Reduced);
    sweep = if tiny {
        // CI smoke grid: still 3 axes, one >64-node point, a handful of
        // simulations.
        sweep
            .cluster_nodes([8, 96])
            .page_bytes([4096, 8192])
            .block_bytes([64])
    } else {
        sweep
            .cluster_nodes([8, 32, 96])
            .page_bytes([1024, 4096, 16384])
            .block_bytes([32, 64, 128])
    };
    let result = sweep.run();

    // The paper-style pivot: normalized time, page size by block size
    // (meaned over the cluster-size axis).
    print!(
        "{}",
        report::format_sweep_table(
            &result,
            Axis::PageBytes,
            Axis::BlockBytes,
            Metric::NormalizedTime
        )
    );
    println!();
    // Traffic view: bytes per access as the cluster grows.
    print!(
        "{}",
        report::format_sweep_table(&result, Axis::Nodes, Axis::System, Metric::BytesPerAccess)
    );
    println!();

    // Axis-by-axis summary lines, grouped over the full grid.
    for axis in [Axis::Nodes, Axis::PageBytes, Axis::BlockBytes] {
        for (value, points) in result.group_by(axis) {
            let mean_norm: f64 =
                points.iter().map(|p| p.normalized_time).sum::<f64>() / points.len() as f64;
            println!(
                "{:>12} = {:<6} mean normalized time {:.2} over {} points",
                format!("{axis:?}"),
                value,
                mean_norm,
                points.len()
            );
        }
    }

    // Machine-readable dump for plotting.
    let out = std::env::temp_dir().join("sweep_page_block.json");
    if report::write_sweep_json(&out, &result).is_ok() {
        println!("\nfull grid written to {}", out.display());
    }
}
