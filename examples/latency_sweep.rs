//! Network-latency sensitivity sweep (the axis behind Figure 7).
//!
//! DSM clusters span a wide range of remote-to-local latency ratios — from
//! tightly integrated machines (ratio ~4) to commodity-interconnect
//! clusters (ratio 16+).  This example sweeps the remote-latency multiplier
//! for one workload and shows how quickly plain CC-NUMA falls behind while
//! R-NUMA stays close to the perfect-CC-NUMA bound.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use dsm_repro::prelude::*;

fn main() {
    let machine = MachineConfig::PAPER;
    let workload = by_name("raytrace").expect("raytrace is in the catalog");
    let trace = workload.generate(&WorkloadConfig::reduced());

    println!(
        "{:>18} {:>14} {:>10} {:>10} {:>10}",
        "remote multiplier", "remote:local", "CC-NUMA", "MigRep", "R-NUMA"
    );
    for factor in [1u64, 2, 4, 8] {
        // One experiment per sweep point: the same three systems, with the
        // remote path stretched by `factor` (baseline included, so the
        // normalization is against perfect CC-NUMA *at this latency*).
        let costs = CostModel::base().with_remote_latency_factor(factor);
        let set = SystemSet {
            experiment: "latency sweep",
            baseline: System::perfect_cc_numa().with(costs).build(),
            systems: vec![
                System::cc_numa().with(costs).build(),
                System::cc_numa().with(MigRep::both()).with(costs).build(),
                System::r_numa().with(costs).build(),
            ],
        };
        let result = Experiment::new(machine)
            .systems(set)
            .traces(vec![trace.clone()])
            .run();
        let wl = &result.per_workload[0];
        println!(
            "{:>18} {:>14.1} {:>10.2} {:>10.2} {:>10.2}",
            format!("{factor}x"),
            costs.remote_to_local_ratio(),
            wl.normalized(0),
            wl.normalized(1),
            wl.normalized(2),
        );
    }
}
