//! Network-latency sensitivity sweep (the axis behind Figure 7).
//!
//! DSM clusters span a wide range of remote-to-local latency ratios — from
//! tightly integrated machines (ratio ~4) to commodity-interconnect
//! clusters (ratio 16+).  This example sweeps the remote-latency multiplier
//! for one workload and shows how quickly plain CC-NUMA falls behind while
//! R-NUMA stays close to the perfect-CC-NUMA bound.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use dsm_repro::prelude::*;

fn main() {
    let machine = MachineConfig::PAPER;
    let workload = by_name("raytrace").expect("raytrace is in the catalog");
    let trace = workload.generate(&WorkloadConfig::reduced());

    println!(
        "{:>18} {:>14} {:>10} {:>10} {:>10}",
        "remote multiplier", "remote:local", "CC-NUMA", "MigRep", "R-NUMA"
    );
    for factor in [1u64, 2, 4, 8] {
        let costs = CostModel::base().with_remote_latency_factor(factor);
        let baseline = ClusterSimulator::new(
            machine,
            SystemConfig::perfect_cc_numa().with_costs(costs),
        )
        .run(&trace);
        let normalized = |config: SystemConfig| {
            ClusterSimulator::new(machine, config.with_costs(costs))
                .run(&trace)
                .normalized_against(&baseline)
        };
        println!(
            "{:>18} {:>14.1} {:>10.2} {:>10.2} {:>10.2}",
            format!("{factor}x"),
            costs.remote_to_local_ratio(),
            normalized(SystemConfig::cc_numa()),
            normalized(SystemConfig::cc_numa_migrep()),
            normalized(SystemConfig::r_numa()),
        );
    }
}
