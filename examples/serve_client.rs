//! Drive the sweep service over a Unix domain socket: start an in-process
//! server, submit the same sweep twice, and watch the second submission
//! come entirely from the content-addressed result cache.
//!
//!     cargo run --release --example serve_client
//!
//! The same protocol works across processes — `serve --socket PATH
//! --cache FILE` keeps a server (and its cache) alive between clients and
//! restarts; `serve --connect PATH --request '{...}'` is this client as a
//! command line.

use dsm_repro::service::json::parse;
use dsm_repro::service::{send_request, serve_unix, SweepService};

fn main() {
    let socket =
        std::env::temp_dir().join(format!("dsm-serve-example-{}.sock", std::process::id()));

    // One sweep: two systems over two cluster sizes on a 1/16-scale radix,
    // normalized against perfect CC-NUMA at the same geometry.
    let sweep = concat!(
        r#"{"kind":"sweep","id":"demo","name":"radix demo","workloads":["radix"],"#,
        r#""systems":["cc-numa","migrep"],"scale":"x1/16","nodes":[4,8]}"#
    );

    let service = SweepService::in_memory();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_unix(&service, &socket));

        // The server binds asynchronously; retry the first connect.
        let mut cold = None;
        for _ in 0..200 {
            match send_request(&socket, sweep) {
                Ok(r) => {
                    cold = Some(r);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let cold = cold.expect("server did not come up");
        println!("first submission (everything simulates):");
        print_stream(&cold);

        println!("\nsecond submission (everything replays from the cache):");
        let warm = send_request(&socket, sweep).expect("resubmit");
        print_stream(&warm);

        let stats = send_request(&socket, r#"{"kind":"cache-stats","id":"s"}"#).expect("stats");
        println!("\ncache: {}", stats[0]);

        send_request(&socket, r#"{"kind":"shutdown","id":"bye"}"#).expect("shutdown");
        server
            .join()
            .expect("server thread")
            .expect("server exits cleanly");
    });
}

/// Print each streamed job event on one line, then the terminal summary.
fn print_stream(responses: &[String]) {
    for line in responses {
        let v = parse(line).expect("valid response JSON");
        match v.get_str("kind") {
            Some("baseline") | Some("point") => {
                println!(
                    "  {:<8} {:>9} {}/{} nodes={} norm={}",
                    v.get_str("kind").unwrap(),
                    if v.get("cached").and_then(|c| c.as_bool()) == Some(true) {
                        "cached"
                    } else {
                        "simulated"
                    },
                    v.get_str("workload").unwrap_or("?"),
                    v.get_str("system").unwrap_or("?"),
                    v.get_u64("nodes").unwrap_or(0),
                    v.get("normalized_time")
                        .and_then(|n| n.as_f64())
                        .map(|n| format!("{n:.3}"))
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            Some("sweep-done") => {
                println!(
                    "  done: {} points + {} baselines, {} cached, {} simulated, {:.2}s",
                    v.get_u64("points").unwrap_or(0),
                    v.get_u64("baselines").unwrap_or(0),
                    v.get_u64("cached").unwrap_or(0),
                    v.get_u64("simulated").unwrap_or(0),
                    v.get("elapsed_seconds")
                        .and_then(|e| e.as_f64())
                        .unwrap_or(0.0),
                );
            }
            _ => println!("  {line}"),
        }
    }
}
