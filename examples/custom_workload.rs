//! Building a custom workload trace and comparing page migration against
//! fine-grain caching on it.
//!
//! The synthetic workload is a producer/consumer pattern the paper's
//! Section 4 analysis talks about directly: a large buffer is initialised by
//! node 0 and afterwards used (read-write) exclusively by node 1.  Page
//! migration is the textbook answer; R-NUMA should match it by caching the
//! pages in node 1's memory instead.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use dsm_repro::prelude::*;
use mem_trace::AddressSpace;

fn main() {
    let machine = MachineConfig::PAPER;
    let topology = machine.topology;

    // Lay out a 1-MB shared buffer.
    let mut space = AddressSpace::new();
    let buffer = space.alloc("buffer", 16 * 1024, 64); // 16K cache lines

    // Build the trace: node 0 (processor 0) produces, node 1's four
    // processors then consume it repeatedly with a working set larger than
    // their processor caches.
    let mut b = TraceBuilder::new("producer-consumer", topology).with_think_cycles(4);
    for line in 0..buffer.elements() {
        b.write(ProcId(0), buffer.elem(line));
    }
    b.barrier_all();
    for round in 0..6u64 {
        for line in 0..buffer.elements() {
            let consumer = ProcId(topology.procs_per_node + (line % 4) as u16);
            if round % 3 == 2 {
                b.write(consumer, buffer.elem(line));
            } else {
                b.read(consumer, buffer.elem(line));
            }
        }
        b.barrier_all();
    }
    let trace = b.build();
    trace.validate().expect("well-formed trace");

    // Thresholds low enough for the (short) synthetic run to trigger the
    // page mechanisms.
    let thresholds = Thresholds {
        migrep_threshold: 64,
        migrep_reset_interval: 100_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    };

    // Compose the contenders and run the custom trace through the harness.
    let set = SystemSet {
        experiment: "producer/consumer: migration vs fine-grain caching",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa().build(),
            System::cc_numa()
                .with(MigRep::migration_only())
                .with(thresholds)
                .build(),
            System::r_numa().with(thresholds).build(),
        ],
    };
    let result = Experiment::new(machine)
        .systems(set)
        .traces(vec![trace])
        .run();

    let wl = &result.per_workload[0];
    println!(
        "{:<12} {:>10} {:>14} {:>12} {:>12}",
        "system", "vs perfect", "remote misses", "migrations", "relocations"
    );
    for (i, r) in wl.results.iter().enumerate() {
        println!(
            "{:<12} {:>10.2} {:>14} {:>12} {:>12}",
            r.system,
            wl.normalized(i),
            r.total_remote_misses(),
            r.per_node.iter().map(|n| n.migrations).sum::<u64>(),
            r.per_node.iter().map(|n| n.relocations).sum::<u64>(),
        );
    }
}
