//! Quickstart: simulate one SPLASH-2-like workload on the three systems the
//! paper spends most of its time on — CC-NUMA, CC-NUMA+MigRep and R-NUMA —
//! and print the headline numbers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsm_repro::prelude::*;

fn main() {
    // 1. Generate a shared-memory reference trace for the paper's 8x4
    //    cluster.  `lu` is the blocked dense LU factorization of Table 2.
    let workload = by_name("lu").expect("lu is in the catalog");
    let trace = workload.generate(&WorkloadConfig::reduced());
    let stats = trace.stats();
    println!(
        "workload: {} ({} accesses, {} pages, {:.0}% writes)",
        trace.name,
        stats.accesses,
        stats.footprint_pages,
        stats.write_fraction() * 100.0
    );

    // 2. Pick the systems to compare.  Perfect CC-NUMA (infinite block
    //    cache) is the baseline the paper normalizes against.
    let machine = MachineConfig::PAPER;
    let baseline = ClusterSimulator::new(machine, SystemConfig::perfect_cc_numa()).run(&trace);
    let systems = [
        SystemConfig::cc_numa(),
        SystemConfig::cc_numa_migrep(),
        SystemConfig::r_numa(),
    ];

    // 3. Run and report.
    println!(
        "\n{:<12} {:>12} {:>10} {:>14} {:>10}",
        "system", "exec cycles", "vs perfect", "remote misses", "page ops"
    );
    println!(
        "{:<12} {:>12} {:>10.2} {:>14} {:>10}",
        baseline.system,
        baseline.execution_time.raw(),
        1.0,
        baseline.total_remote_misses(),
        baseline.total_page_operations()
    );
    for system in systems {
        let result = ClusterSimulator::new(machine, system).run(&trace);
        println!(
            "{:<12} {:>12} {:>10.2} {:>14} {:>10}",
            result.system,
            result.execution_time.raw(),
            result.normalized_against(&baseline),
            result.total_remote_misses(),
            result.total_page_operations()
        );
    }
}
