//! Quickstart: simulate one SPLASH-2-like workload on the three systems the
//! paper spends most of its time on — CC-NUMA, CC-NUMA+MigRep and R-NUMA —
//! and print the headline numbers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dsm_repro::prelude::*;

fn main() {
    // 1. Generate a shared-memory reference trace for the paper's 8x4
    //    cluster.  `lu` is the blocked dense LU factorization of Table 2.
    let workload = by_name("lu").expect("lu is in the catalog");
    let trace = workload.generate(&WorkloadConfig::reduced());
    let stats = trace.stats();
    println!(
        "workload: {} ({} accesses, {} pages, {:.0}% writes)",
        trace.name,
        stats.accesses,
        stats.footprint_pages,
        stats.write_fraction() * 100.0
    );

    // 2. Compose the systems to compare with the `System` builder.  Perfect
    //    CC-NUMA (infinite block cache) is the baseline the paper
    //    normalizes against.
    let set = SystemSet {
        experiment: "quickstart",
        baseline: System::perfect_cc_numa().build(),
        systems: vec![
            System::cc_numa().build(),
            System::cc_numa().with(MigRep::both()).build(),
            System::r_numa().build(),
        ],
    };

    // 3. Run every (workload, system) pair through the experiment harness.
    let result = Experiment::new(MachineConfig::PAPER)
        .systems(set)
        .traces(vec![trace])
        .run();

    // 4. Report.
    let wl = &result.per_workload[0];
    println!(
        "\n{:<12} {:>12} {:>10} {:>14} {:>10}",
        "system", "exec cycles", "vs perfect", "remote misses", "page ops"
    );
    println!(
        "{:<12} {:>12} {:>10.2} {:>14} {:>10}",
        wl.baseline.system,
        wl.baseline.execution_time.raw(),
        1.0,
        wl.baseline.total_remote_misses(),
        wl.baseline.total_page_operations()
    );
    for (i, r) in wl.results.iter().enumerate() {
        println!(
            "{:<12} {:>12} {:>10.2} {:>14} {:>10}",
            r.system,
            r.execution_time.raw(),
            wl.normalized(i),
            r.total_remote_misses(),
            r.total_page_operations()
        );
    }
}
