//! Custom problem scales: sweep the problem-size axis itself.
//!
//! The paper fixes its workloads at the Table 2 data sets; this example
//! treats the data-set size as a real [`Sweep`] axis via
//! [`Scale::Custom`] — each scale point regenerates every trace at a
//! rational multiple of the Table 2 sizes and normalizes against a
//! perfect-CC-NUMA baseline *at the same scale*.  The systems under test
//! are deliberately **fixed** across the axis (a sweep's system templates
//! are scale-independent), so what the grid shows is how a given page
//! cache and threshold setting fares as the problem grows past it — R-NUMA
//! degrading as the working set outgrows its fixed cache is the expected
//! shape.  To instead hold the paper's *ratios* while scaling, build each
//! point's systems from `ExperimentScale::Custom(..)` presets (as the
//! experiment binaries' `--custom N/D` flag does, interpolating the page
//! cache and thresholds by the same factor) and run one sweep per scale.
//!
//! The default grid stays sub-paper so it finishes quickly; `--big` adds a
//! bigger-than-Table-2 point (several minutes).  `--tiny` is the CI smoke
//! grid: one custom sweep point end to end.
//!
//! ```text
//! cargo run --release --example custom_scale [--big|--tiny]
//! ```

use dsm_repro::bench::{report, Axis, ExperimentScale, Metric, Sweep};
use dsm_repro::prelude::*;

fn main() {
    let big = std::env::args().any(|a| a == "--big");
    let tiny = std::env::args().any(|a| a == "--tiny");

    let mut scales = if tiny {
        // CI smoke: a single custom point, end to end through the sweep
        // engine, reports and the fused pipeline.
        vec![ExperimentScale::Custom(CustomScale::new(1, 8))]
    } else {
        vec![
            ExperimentScale::Custom(CustomScale::new(1, 8)),
            ExperimentScale::Custom(CustomScale::new(1, 2)),
            ExperimentScale::Paper,
        ]
    };
    if big {
        scales.push(ExperimentScale::Custom(CustomScale::new(2, 1)));
    }

    let thresholds = Thresholds {
        migrep_threshold: 250,
        migrep_reset_interval: 8_000,
        rnuma_threshold: 8,
        rnuma_relocation_delay: 0,
    };
    let result = Sweep::new("problem-scale axis on radix + lu")
        .system(
            System::cc_numa()
                .with(MigRep::both())
                .with(thresholds)
                .build(),
        )
        .system(System::r_numa().with(thresholds).build())
        .workloads(["radix", "lu"])
        .scales(scales)
        .run();

    print!(
        "{}",
        report::format_sweep_table(&result, Axis::Scale, Axis::System, Metric::NormalizedTime)
    );
    println!();
    print!(
        "{}",
        report::format_sweep_table(&result, Axis::Scale, Axis::System, Metric::BytesPerAccess)
    );

    // The smoke contract CI checks: every point simulated something and
    // normalized against a baseline at its own scale.
    for p in &result.points {
        assert!(p.result.accesses > 0, "empty point {:?}", p.axes);
        assert!(p.normalized_time >= 0.99, "sub-baseline point {:?}", p.axes);
    }
    println!(
        "\nok: {} points across scales {:?}",
        result.points.len(),
        result.axis_values(Axis::Scale)
    );
}
