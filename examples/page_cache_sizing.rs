//! Page-cache sizing study (the question behind Section 6.4 of the paper):
//! how much S-COMA page cache does R-NUMA need before it stops losing
//! performance to replacements?
//!
//! Sweeps the per-node page-cache size from 64 KB to infinite for `radix`,
//! the workload with the largest streaming working set, and prints the
//! normalized execution time and replacement count at each point.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example page_cache_sizing
//! ```

use dsm_protocol::PageCacheConfig;
use dsm_repro::prelude::*;

fn main() {
    let machine = MachineConfig::PAPER;
    let workload = by_name("radix").expect("radix is in the catalog");
    let trace = workload.generate(&WorkloadConfig::reduced());

    let baseline = ClusterSimulator::new(machine, SystemConfig::perfect_cc_numa()).run(&trace);
    let cc_numa = ClusterSimulator::new(machine, SystemConfig::cc_numa()).run(&trace);
    println!(
        "radix on CC-NUMA: {:.2}x perfect CC-NUMA ({} remote misses)\n",
        cc_numa.normalized_against(&baseline),
        cc_numa.total_remote_misses()
    );

    println!(
        "{:>14} {:>12} {:>14} {:>14} {:>12}",
        "page cache", "vs perfect", "remote misses", "relocations", "replacements"
    );
    let sizes_kb = [64u64, 256, 512, 1024, 2400, 4800];
    for kb in sizes_kb {
        let config = SystemConfig::r_numa_with(PageCacheConfig::Finite {
            size_bytes: kb * 1024,
        });
        let result = ClusterSimulator::new(machine, config).run(&trace);
        println!(
            "{:>11} KB {:>12.2} {:>14} {:>14} {:>12}",
            kb,
            result.normalized_against(&baseline),
            result.total_remote_misses(),
            result.total_page_operations(),
            result.total_page_cache_replacements()
        );
    }
    let inf = ClusterSimulator::new(machine, SystemConfig::r_numa_inf()).run(&trace);
    println!(
        "{:>14} {:>12.2} {:>14} {:>14} {:>12}",
        "infinite",
        inf.normalized_against(&baseline),
        inf.total_remote_misses(),
        inf.total_page_operations(),
        inf.total_page_cache_replacements()
    );
}
