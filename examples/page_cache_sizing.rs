//! Page-cache sizing study (the question behind Section 6.4 of the paper):
//! how much S-COMA page cache does R-NUMA need before it stops losing
//! performance to replacements?
//!
//! Sweeps the per-node page-cache size from 64 KB to infinite for `radix`,
//! the workload with the largest streaming working set, and prints the
//! normalized execution time and replacement count at each point.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example page_cache_sizing
//! ```

use dsm_repro::prelude::*;

fn main() {
    let machine = MachineConfig::PAPER;
    let sizes_kb = [64u64, 256, 512, 1024, 2400, 4800];

    // One experiment: CC-NUMA for reference, then every page-cache size.
    // The whole sweep runs in parallel across worker threads.
    let mut systems = vec![System::cc_numa().build()];
    systems.extend(sizes_kb.iter().map(|kb| {
        System::r_numa()
            .with(PageCaching::bytes(kb * 1024))
            .named(format!("R-NUMA-{kb}KB"))
            .build()
    }));
    systems.push(System::r_numa().with(PageCaching::infinite()).build());

    let result = Experiment::new(machine)
        .systems(SystemSet {
            experiment: "page-cache sizing",
            baseline: System::perfect_cc_numa().build(),
            systems,
        })
        .workloads(["radix"])
        .run();

    let wl = &result.per_workload[0];
    println!(
        "radix on CC-NUMA: {:.2}x perfect CC-NUMA ({} remote misses)\n",
        wl.normalized(0),
        wl.results[0].total_remote_misses()
    );

    println!(
        "{:>14} {:>12} {:>14} {:>14} {:>12}",
        "page cache", "vs perfect", "remote misses", "relocations", "replacements"
    );
    for (i, label) in sizes_kb
        .iter()
        .map(|kb| format!("{kb} KB"))
        .chain(["infinite".to_string()])
        .enumerate()
    {
        let r = &wl.results[i + 1]; // skip the CC-NUMA reference column
        println!(
            "{:>14} {:>12.2} {:>14} {:>14} {:>12}",
            label,
            wl.normalized(i + 1),
            r.total_remote_misses(),
            r.total_page_operations(),
            r.total_page_cache_replacements()
        );
    }
}
